#include "tensor/backend.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"

namespace orco::tensor {

namespace {

std::atomic<bool> g_parallel{true};
thread_local bool t_parallel = true;

// Minimum row*col product before we bother waking the thread pool.
constexpr std::size_t kParallelThreshold = 64 * 1024;

common::ThreadPool* gemm_pool(std::size_t m, std::size_t n) {
  return (g_parallel.load() && t_parallel && m * n >= kParallelThreshold)
             ? &common::ThreadPool::global()
             : nullptr;
}

// Must mirror nn/activations.h exactly: fusing an activation into the GEMM
// epilogue may not change a single value versus the standalone layer.
inline float apply_act(float v, EpilogueAct act, float alpha) {
  switch (act) {
    case EpilogueAct::kNone:      return v;
    case EpilogueAct::kReLU:      return v > 0.0f ? v : 0.0f;
    case EpilogueAct::kLeakyReLU: return v > 0.0f ? v : alpha * v;
    case EpilogueAct::kSigmoid:   return 1.0f / (1.0f + std::exp(-v));
    case EpilogueAct::kTanh:      return std::tanh(v);
  }
  return v;
}

// ---------------------------------------------------------------------------
// Reference backend: the original ikj streaming kernel. The k-loop is
// hoisted outside the j-loop so B is streamed row-wise — cache-friendly
// without explicit tiling — and the inner loop is branch-free so it
// auto-vectorizes.
// ---------------------------------------------------------------------------

void ref_gemm_rows(const float* a, const float* b, float* c, std::size_t r0,
                   std::size_t r1, std::size_t k, std::size_t n) {
  for (std::size_t i = r0; i < r1; ++i) {
    float* ci = c + i * n;
    const float* ai = a + i * k;
    for (std::size_t p = 0; p < k; ++p) {
      const float aip = ai[p];
      const float* bp = b + p * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
}

class ReferenceBackend final : public Backend {
 public:
  std::string name() const override { return "reference"; }

  void gemm(const float* a, const float* b, float* c, std::size_t m,
            std::size_t k, std::size_t n) const override {
    common::parallel_for(gemm_pool(m, n), 0, m, /*grain=*/8,
                         [&](std::size_t lo, std::size_t hi) {
                           ref_gemm_rows(a, b, c, lo, hi, k, n);
                         });
  }

  // The transposed layouts materialise the transpose and stream, keeping
  // the hot loop contiguous — the reduction order (ascending k) matches
  // gemm(), so all three layouts agree bitwise with each other and with the
  // blocked backend.
  void gemm_nt(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n) const override {
    std::vector<float> bt(k * n);
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t p = 0; p < k; ++p) bt[p * n + j] = b[j * k + p];
    }
    gemm(a, bt.data(), c, m, k, n);
  }

  void gemm_tn(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n) const override {
    std::vector<float> at(m * k);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t p = 0; p < k; ++p) at[i * k + p] = a[p * m + i];
    }
    gemm(at.data(), b, c, m, k, n);
  }
};

// ---------------------------------------------------------------------------
// Blocked backend: packed-panel, cache-tiled, register-blocked GEMM.
//
//   - k is split into kKc panels, n into kNc panels; the active B panel is
//     packed into kNr-wide column strips so the micro-kernel streams it
//     contiguously from L1/L2.
//   - rows are split into kMc blocks; each block's A panel is packed into
//     kMr-tall row strips (zero-padded), so the micro-kernel is branch-free.
//   - the kMr×kNr micro-kernel keeps the output tile in registers across
//     the whole k panel: ~1 load per 2·kMr·kNr flops instead of the
//     reference kernel's load+store of the C row every k step. Plain loops
//     with constant trip counts — the compiler vectorizes the j dimension.
//
// Per-element reduction stays in ascending k order (one accumulator per
// output element, panels visited in order), so results match the reference
// kernel bitwise and are independent of batch shape and tile position.
// ---------------------------------------------------------------------------

constexpr std::size_t kMr = 4;    // micro-tile rows
constexpr std::size_t kNr = 32;   // micro-tile cols (4 SIMD lanes of 8)
constexpr std::size_t kKc = 256;  // k panel: kKc*kNr B floats stay in L1
constexpr std::size_t kMc = 64;   // row block per packed A panel
constexpr std::size_t kNc = 1024; // col panel: bounds the packed B buffer

constexpr std::size_t round_up(std::size_t v, std::size_t t) {
  return (v + t - 1) / t * t;
}

// Packs A[i0:i0+mc, p0:p0+kc] (or the transpose-source equivalent when
// `trans`, with `a` stored (k×m)) into kMr-interleaved panels: panel ip
// holds kMr consecutive rows laid out [p][ii], zero-padded past mc.
void pack_a_panel(const float* a, std::size_t lda, bool trans, std::size_t i0,
                  std::size_t p0, std::size_t mc, std::size_t kc, float* ap) {
  for (std::size_t ip = 0; ip < mc; ip += kMr) {
    float* dst = ap + (ip / kMr) * (kMr * kc);
    for (std::size_t ii = 0; ii < kMr; ++ii) {
      const std::size_t i = i0 + ip + ii;
      if (ip + ii < mc) {
        if (trans) {
          for (std::size_t p = 0; p < kc; ++p) {
            dst[p * kMr + ii] = a[(p0 + p) * lda + i];
          }
        } else {
          const float* src = a + i * lda + p0;
          for (std::size_t p = 0; p < kc; ++p) dst[p * kMr + ii] = src[p];
        }
      } else {
        for (std::size_t p = 0; p < kc; ++p) dst[p * kMr + ii] = 0.0f;
      }
    }
  }
}

// Packs B[p0:p0+kc, j0:j0+nc] (or the transpose-source equivalent when
// `trans`, with `b` stored (n×k)) into kNr-interleaved panels: panel jp
// holds kNr consecutive columns laid out [p][jj], zero-padded past nc.
void pack_b_panel(const float* b, std::size_t ldb, bool trans, std::size_t p0,
                  std::size_t j0, std::size_t kc, std::size_t nc, float* bp) {
  for (std::size_t jp = 0; jp < nc; jp += kNr) {
    float* dst = bp + (jp / kNr) * (kNr * kc);
    if (trans) {
      for (std::size_t jj = 0; jj < kNr; ++jj) {
        const std::size_t j = j0 + jp + jj;
        if (jp + jj < nc) {
          const float* src = b + j * ldb + p0;
          for (std::size_t p = 0; p < kc; ++p) dst[p * kNr + jj] = src[p];
        } else {
          for (std::size_t p = 0; p < kc; ++p) dst[p * kNr + jj] = 0.0f;
        }
      }
    } else {
      const std::size_t cols = std::min(kNr, nc - jp);
      for (std::size_t p = 0; p < kc; ++p) {
        const float* src = b + (p0 + p) * ldb + j0 + jp;
        float* row = dst + p * kNr;
        for (std::size_t jj = 0; jj < cols; ++jj) row[jj] = src[jj];
        for (std::size_t jj = cols; jj < kNr; ++jj) row[jj] = 0.0f;
      }
    }
  }
}

// One kMr×kNr output tile accumulated over a whole packed k panel. The
// accumulator array lives in registers; constant trip counts let the
// compiler unroll and vectorize the jj dimension.
void micro_kernel(const float* ap, const float* bp, std::size_t kc,
                  float acc[kMr][kNr]) {
  for (std::size_t p = 0; p < kc; ++p) {
    const float* a = ap + p * kMr;
    const float* b = bp + p * kNr;
    for (std::size_t ii = 0; ii < kMr; ++ii) {
      const float aip = a[ii];
      for (std::size_t jj = 0; jj < kNr; ++jj) {
        acc[ii][jj] += aip * b[jj];
      }
    }
  }
}

// Seeds the accumulator tile from C (zero on the padded fringe) so that
// across k panels every output element is ONE sequential reduction chain in
// ascending k order — bitwise identical to the reference ikj kernel, which
// accumulates straight into C. Summing each panel separately and adding
// would re-associate the chain and drift at the last ulps.
void load_tile(const float* c, std::size_t ldc, std::size_t rows,
               std::size_t cols, float acc[kMr][kNr]) {
  for (std::size_t ii = 0; ii < kMr; ++ii) {
    if (ii < rows) {
      const float* ci = c + ii * ldc;
      for (std::size_t jj = 0; jj < kNr; ++jj) {
        acc[ii][jj] = jj < cols ? ci[jj] : 0.0f;
      }
    } else {
      for (std::size_t jj = 0; jj < kNr; ++jj) acc[ii][jj] = 0.0f;
    }
  }
}

// Writes a micro-tile back, clipping the zero-padded fringe; when `epi` is
// set (last k panel of a fused GEMM) the epilogue is applied while the tile
// is still hot.
void store_tile(float* c, std::size_t ldc, const float acc[kMr][kNr],
                std::size_t rows, std::size_t cols, const Epilogue* epi,
                std::size_t row0, std::size_t col0) {
  for (std::size_t ii = 0; ii < rows; ++ii) {
    float* ci = c + ii * ldc;
    for (std::size_t jj = 0; jj < cols; ++jj) {
      float v = acc[ii][jj];
      if (epi) {
        if (epi->bias) {
          v += epi->bias_per_row ? epi->bias[row0 + ii] : epi->bias[col0 + jj];
        }
        v = apply_act(v, epi->act, epi->leaky_alpha);
      }
      ci[jj] = v;
    }
  }
}

class BlockedBackend final : public Backend {
 public:
  std::string name() const override { return "blocked"; }

  void gemm(const float* a, const float* b, float* c, std::size_t m,
            std::size_t k, std::size_t n) const override {
    run(a, k, false, b, n, false, c, m, k, n, nullptr, nullptr, nullptr);
  }

  void gemm_nt(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n) const override {
    run(a, k, false, b, k, true, c, m, k, n, nullptr, nullptr, nullptr);
  }

  void gemm_tn(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n) const override {
    run(a, m, true, b, n, false, c, m, k, n, nullptr, nullptr, nullptr);
  }

  void gemm_fused(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n, bool transpose_b,
                  const Epilogue& epilogue) const override {
    std::fill(c, c + m * n, 0.0f);
    run(a, k, false, b, transpose_b ? k : n, transpose_b, c, m, k, n,
        &epilogue, nullptr, nullptr);
  }

  // Prepacking walks the exact (pc, jc) / (pc, blk) panel order of run(),
  // so gemm_prepacked streams the stored panels at the offsets run() would
  // have packed them to — the micro-kernel sees identical bytes and the
  // result matches the pack-on-the-fly path bitwise.
  PackedWeights pack_b(const float* b, std::size_t k, std::size_t n,
                       bool transpose_b) const override {
    PackedWeights packed;
    packed.owner = this;
    packed.side = 'B';
    packed.rows = k;
    packed.cols = n;
    const std::size_t ldb = transpose_b ? k : n;
    std::size_t total = 0;
    for (std::size_t pc = 0; pc < k; pc += kKc) {
      const std::size_t kc = std::min(kKc, k - pc);
      for (std::size_t jc = 0; jc < n; jc += kNc) {
        total += round_up(std::min(kNc, n - jc), kNr) * kc;
      }
    }
    packed.data.resize(total);
    std::size_t off = 0;
    for (std::size_t pc = 0; pc < k; pc += kKc) {
      const std::size_t kc = std::min(kKc, k - pc);
      for (std::size_t jc = 0; jc < n; jc += kNc) {
        const std::size_t nc = std::min(kNc, n - jc);
        pack_b_panel(b, ldb, transpose_b, pc, jc, kc, nc,
                     packed.data.data() + off);
        off += round_up(nc, kNr) * kc;
      }
    }
    return packed;
  }

  PackedWeights pack_a(const float* a, std::size_t m,
                       std::size_t k) const override {
    PackedWeights packed;
    packed.owner = this;
    packed.side = 'A';
    packed.rows = m;
    packed.cols = k;
    std::size_t total = 0;
    for (std::size_t pc = 0; pc < k; pc += kKc) {
      total += round_up(m, kMr) * std::min(kKc, k - pc);
    }
    packed.data.resize(total);
    std::size_t off = 0;
    for (std::size_t pc = 0; pc < k; pc += kKc) {
      const std::size_t kc = std::min(kKc, k - pc);
      for (std::size_t ic = 0; ic < m; ic += kMc) {
        const std::size_t mc = std::min(kMc, m - ic);
        pack_a_panel(a, k, false, ic, pc, mc, kc, packed.data.data() + off);
        off += round_up(mc, kMr) * kc;
      }
    }
    return packed;
  }

  void gemm_prepacked(const float* other, const PackedWeights& packed,
                      float* c, std::size_t m, std::size_t k, std::size_t n,
                      const Epilogue& epilogue) const override {
    ORCO_CHECK(packed.owner == this,
               "PackedWeights were packed by a different backend");
    std::fill(c, c + m * n, 0.0f);
    if (packed.side == 'B') {
      ORCO_CHECK(packed.rows == k && packed.cols == n,
                 "prepacked B is " << packed.rows << "x" << packed.cols
                                   << ", GEMM wants " << k << "x" << n);
      run(other, k, false, nullptr, 0, false, c, m, k, n, &epilogue, nullptr,
          packed.data.data());
    } else {
      ORCO_CHECK(packed.rows == m && packed.cols == k,
                 "prepacked A is " << packed.rows << "x" << packed.cols
                                   << ", GEMM wants " << m << "x" << k);
      run(nullptr, 0, false, other, n, false, c, m, k, n, &epilogue,
          packed.data.data(), nullptr);
    }
  }

 private:
  // packed_a / packed_b point at panel data laid out by pack_a/pack_b;
  // non-null skips the corresponding per-call packing.
  static void run(const float* a, std::size_t lda, bool ta, const float* b,
                  std::size_t ldb, bool tb, float* c, std::size_t m,
                  std::size_t k, std::size_t n, const Epilogue* epi,
                  const float* packed_a, const float* packed_b) {
    if (m == 0 || n == 0) return;
    if (k == 0) {
      if (epi) apply_epilogue(c, m, n, *epi);
      return;
    }
    thread_local std::vector<float> bp_buf;
    std::size_t b_off = 0;   // walk of the prepacked B panels (pc-major)
    std::size_t a_base = 0;  // prepacked A offset of the current k panel
    for (std::size_t pc = 0; pc < k; pc += kKc) {
      const std::size_t kc = std::min(kKc, k - pc);
      const bool last_panel = pc + kc == k;
      for (std::size_t jc = 0; jc < n; jc += kNc) {
        const std::size_t nc = std::min(kNc, n - jc);
        const float* bp;
        if (packed_b != nullptr) {
          bp = packed_b + b_off;
        } else {
          bp_buf.resize(round_up(nc, kNr) * kc);
          pack_b_panel(b, ldb, tb, pc, jc, kc, nc, bp_buf.data());
          bp = bp_buf.data();
        }
        b_off += round_up(nc, kNr) * kc;

        const std::size_t row_blocks = (m + kMc - 1) / kMc;
        common::parallel_for(
            gemm_pool(m, n), 0, row_blocks, /*grain=*/1,
            [&](std::size_t blk0, std::size_t blk1) {
              thread_local std::vector<float> ap_buf;
              for (std::size_t blk = blk0; blk < blk1; ++blk) {
                const std::size_t ic = blk * kMc;
                const std::size_t mc = std::min(kMc, m - ic);
                const float* apan;
                if (packed_a != nullptr) {
                  // Block `blk` starts ic rows into the panel; full blocks
                  // are kMr-aligned (kMc % kMr == 0), so its offset is
                  // exactly ic*kc floats past the panel base.
                  apan = packed_a + a_base + ic * kc;
                } else {
                  ap_buf.resize(round_up(mc, kMr) * kc);
                  pack_a_panel(a, lda, ta, ic, pc, mc, kc, ap_buf.data());
                  apan = ap_buf.data();
                }
                for (std::size_t jr = 0; jr < nc; jr += kNr) {
                  const float* bpan = bp + (jr / kNr) * (kNr * kc);
                  const std::size_t cols = std::min(kNr, nc - jr);
                  for (std::size_t ir = 0; ir < mc; ir += kMr) {
                    const std::size_t rows = std::min(kMr, mc - ir);
                    float* ctile = c + (ic + ir) * n + jc + jr;
                    float acc[kMr][kNr];
                    load_tile(ctile, n, rows, cols, acc);
                    micro_kernel(apan + (ir / kMr) * (kMr * kc), bpan, kc,
                                 acc);
                    store_tile(ctile, n, acc, rows, cols,
                               (epi && last_panel) ? epi : nullptr, ic + ir,
                               jc + jr);
                  }
                }
              }
            });
      }
      a_base += round_up(m, kMr) * kc;
    }
  }
};

std::atomic<const Backend*> g_default{nullptr};
thread_local const Backend* t_scope = nullptr;

struct RegistryEntry {
  const char* name;
  const Backend& (*get)();
};

// The single source of truth for registered backends; lookups, name
// listings and error messages all derive from it.
constexpr RegistryEntry kRegistry[] = {
    {"reference", reference_backend},
    {"blocked", blocked_backend},
};

std::string registry_names_joined() {
  std::string out;
  for (const auto& entry : kRegistry) {
    if (!out.empty()) out += ", ";
    out += entry.name;
  }
  return out;
}

const Backend* default_from_env() {
  const char* env = std::getenv("ORCO_BACKEND");
  if (env == nullptr || *env == '\0') return &reference_backend();
  const Backend* backend = find_backend(env);
  ORCO_CHECK(backend != nullptr,
             "ORCO_BACKEND=" << env << " is not a registered kernel backend"
                             << " (have: " << registry_names_joined() << ")");
  return backend;
}

}  // namespace

void Backend::gemm_fused(const float* a, const float* b, float* c,
                         std::size_t m, std::size_t k, std::size_t n,
                         bool transpose_b, const Epilogue& epilogue) const {
  std::fill(c, c + m * n, 0.0f);
  if (k > 0) {
    if (transpose_b) {
      gemm_nt(a, b, c, m, k, n);
    } else {
      gemm(a, b, c, m, k, n);
    }
  }
  apply_epilogue(c, m, n, epilogue);
}

// Base prepacking: materialise the operand row-major so the prepacked GEMM
// is a plain gemm_fused with transpose_b == false. For the reference
// backend this is already bitwise-faithful (its NT path materialises the
// same transpose per call) and removes that per-call transpose.
PackedWeights Backend::pack_b(const float* b, std::size_t k, std::size_t n,
                              bool transpose_b) const {
  PackedWeights packed;
  packed.owner = this;
  packed.side = 'B';
  packed.rows = k;
  packed.cols = n;
  packed.data.resize(k * n);
  if (transpose_b) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t p = 0; p < k; ++p) {
        packed.data[p * n + j] = b[j * k + p];
      }
    }
  } else {
    std::copy(b, b + k * n, packed.data.begin());
  }
  return packed;
}

PackedWeights Backend::pack_a(const float* a, std::size_t m,
                              std::size_t k) const {
  PackedWeights packed;
  packed.owner = this;
  packed.side = 'A';
  packed.rows = m;
  packed.cols = k;
  packed.data.assign(a, a + m * k);
  return packed;
}

void Backend::gemm_prepacked(const float* other, const PackedWeights& packed,
                             float* c, std::size_t m, std::size_t k,
                             std::size_t n, const Epilogue& epilogue) const {
  ORCO_CHECK(packed.owner == this,
             "PackedWeights were packed by a different backend");
  if (packed.side == 'B') {
    ORCO_CHECK(packed.rows == k && packed.cols == n,
               "prepacked B is " << packed.rows << "x" << packed.cols
                                 << ", GEMM wants " << k << "x" << n);
    gemm_fused(other, packed.data.data(), c, m, k, n, /*transpose_b=*/false,
               epilogue);
  } else {
    ORCO_CHECK(packed.rows == m && packed.cols == k,
               "prepacked A is " << packed.rows << "x" << packed.cols
                                 << ", GEMM wants " << m << "x" << k);
    gemm_fused(packed.data.data(), other, c, m, k, n, /*transpose_b=*/false,
               epilogue);
  }
}

const Backend& reference_backend() {
  static const ReferenceBackend backend;
  return backend;
}

const Backend& blocked_backend() {
  static const BlockedBackend backend;
  return backend;
}

const Backend* find_backend(const std::string& name) {
  for (const auto& entry : kRegistry) {
    if (name == entry.name) return &entry.get();
  }
  return nullptr;
}

const Backend* resolve_backend(const std::string& name) {
  if (name.empty()) return nullptr;
  const Backend* backend = find_backend(name);
  ORCO_CHECK(backend != nullptr,
             "unknown kernel backend \"" << name << "\" (have: "
                                         << registry_names_joined() << ")");
  return backend;
}

std::vector<std::string> backend_names() {
  std::vector<std::string> names;
  for (const auto& entry : kRegistry) names.emplace_back(entry.name);
  return names;
}

void set_backend(const std::string& name) {
  const Backend* backend = find_backend(name);
  ORCO_CHECK(backend != nullptr,
             "unknown kernel backend \"" << name << "\" (have: "
                                         << registry_names_joined() << ")");
  g_default.store(backend, std::memory_order_release);
}

void set_backend(const Backend& backend) {
  g_default.store(&backend, std::memory_order_release);
}

const Backend& current_backend() {
  if (t_scope != nullptr) return *t_scope;
  const Backend* backend = g_default.load(std::memory_order_acquire);
  if (backend == nullptr) {
    // First use: publish the env-derived default, but never clobber a
    // concurrent set_backend() — an explicit choice must win the race.
    const Backend* env_default = default_from_env();
    if (g_default.compare_exchange_strong(backend, env_default,
                                          std::memory_order_acq_rel)) {
      backend = env_default;
    }
    // On CAS failure `backend` was reloaded with the concurrent store.
  }
  return *backend;
}

BackendScope::BackendScope(const Backend* backend) : prev_(t_scope) {
  if (backend != nullptr) t_scope = backend;
}

BackendScope::~BackendScope() { t_scope = prev_; }

void apply_epilogue(float* c, std::size_t m, std::size_t n,
                    const Epilogue& epilogue) {
  for (std::size_t i = 0; i < m; ++i) {
    float* ci = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      float v = ci[j];
      if (epilogue.bias) {
        v += epilogue.bias_per_row ? epilogue.bias[i] : epilogue.bias[j];
      }
      ci[j] = apply_act(v, epilogue.act, epilogue.leaky_alpha);
    }
  }
}

void set_gemm_parallelism(bool enabled) { g_parallel.store(enabled); }
bool gemm_parallelism() { return g_parallel.load(); }

void set_thread_gemm_parallelism(bool enabled) { t_parallel = enabled; }
bool thread_gemm_parallelism() { return t_parallel; }

}  // namespace orco::tensor
