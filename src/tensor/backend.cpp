#include "tensor/backend.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <iterator>
#include <vector>

#include "common/check.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "tensor/gemm_panels.h"

namespace orco::tensor {

namespace {

std::atomic<bool> g_parallel{true};
thread_local bool t_parallel = true;

// Minimum row*col product before we bother waking the thread pool.
constexpr std::size_t kParallelThreshold = 64 * 1024;

using detail::apply_act;
using detail::gemm_pool;

// ---------------------------------------------------------------------------
// Reference backend: the original ikj streaming kernel. The k-loop is
// hoisted outside the j-loop so B is streamed row-wise — cache-friendly
// without explicit tiling — and the inner loop is branch-free so it
// auto-vectorizes.
// ---------------------------------------------------------------------------

void ref_gemm_rows(const float* a, const float* b, float* c, std::size_t r0,
                   std::size_t r1, std::size_t k, std::size_t n) {
  for (std::size_t i = r0; i < r1; ++i) {
    float* ci = c + i * n;
    const float* ai = a + i * k;
    for (std::size_t p = 0; p < k; ++p) {
      const float aip = ai[p];
      const float* bp = b + p * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
}

class ReferenceBackend final : public Backend {
 public:
  std::string name() const override { return "reference"; }

  void gemm(const float* a, const float* b, float* c, std::size_t m,
            std::size_t k, std::size_t n) const override {
    common::parallel_for(gemm_pool(m, n), 0, m, /*grain=*/8,
                         [&](std::size_t lo, std::size_t hi) {
                           ref_gemm_rows(a, b, c, lo, hi, k, n);
                         });
  }

  // The transposed layouts materialise the transpose and stream, keeping
  // the hot loop contiguous — the reduction order (ascending k) matches
  // gemm(), so all three layouts agree bitwise with each other and with the
  // blocked backend.
  void gemm_nt(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n) const override {
    std::vector<float> bt(k * n);
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t p = 0; p < k; ++p) bt[p * n + j] = b[j * k + p];
    }
    gemm(a, bt.data(), c, m, k, n);
  }

  void gemm_tn(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n) const override {
    std::vector<float> at(m * k);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t p = 0; p < k; ++p) at[i * k + p] = a[p * m + i];
    }
    gemm(at.data(), b, c, m, k, n);
  }
};

// ---------------------------------------------------------------------------
// Blocked backend: packed-panel, cache-tiled, register-blocked GEMM,
// instantiated from the shared machinery in tensor/gemm_panels.h.
//
//   - k is split into kKc panels, n into kNc panels; the active B panel is
//     packed into kNr-wide column strips so the micro-kernel streams it
//     contiguously from L1/L2.
//   - rows are split into kMc blocks; each block's A panel is packed into
//     kMr-tall row strips (zero-padded), so the micro-kernel is branch-free.
//   - the kMr×kNr micro-kernel keeps the output tile in registers across
//     the whole k panel: ~1 load per 2·kMr·kNr flops instead of the
//     reference kernel's load+store of the C row every k step. Plain loops
//     with constant trip counts — the compiler vectorizes the j dimension.
//
// Per-element reduction stays in ascending k order (one accumulator per
// output element, panels visited in order), so results match the reference
// kernel bitwise and are independent of batch shape and tile position.
// (The simd backend in backend_simd.cpp swaps only the tile() arithmetic
// for explicit FMA intrinsics — everything else here is shared.)
// ---------------------------------------------------------------------------

struct BlockedTraits {
  static constexpr std::size_t kMr = 4;    // micro-tile rows
  static constexpr std::size_t kNr = 32;   // micro-tile cols (4 lanes of 8)
  static constexpr std::size_t kKc = 256;  // k panel: kKc*kNr B floats in L1
  static constexpr std::size_t kMc = 64;   // row block per packed A panel
  static constexpr std::size_t kNc = 1024; // col panel: packed B bound

  static void tile(const float* ap, const float* bp, std::size_t kc, float* c,
                   std::size_t ldc, std::size_t rows, std::size_t cols,
                   const Epilogue* epi, std::size_t row0, std::size_t col0) {
    detail::generic_tile<kMr, kNr>(ap, bp, kc, c, ldc, rows, cols, epi, row0,
                                   col0);
  }
};

class BlockedBackend final : public Backend {
 public:
  std::string name() const override { return "blocked"; }

  void gemm(const float* a, const float* b, float* c, std::size_t m,
            std::size_t k, std::size_t n) const override {
    detail::panel_run<BlockedTraits>({a, k, false}, b, n, false, c, m, k, n,
                                     nullptr, nullptr, nullptr);
  }

  void gemm_nt(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n) const override {
    detail::panel_run<BlockedTraits>({a, k, false}, b, k, true, c, m, k, n,
                                     nullptr, nullptr, nullptr);
  }

  void gemm_tn(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n) const override {
    detail::panel_run<BlockedTraits>({a, m, true}, b, n, false, c, m, k, n,
                                     nullptr, nullptr, nullptr);
  }

  void gemm_fused(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n, bool transpose_b,
                  const Epilogue& epilogue) const override {
    std::fill(c, c + m * n, 0.0f);
    detail::panel_run<BlockedTraits>({a, k, false}, b, transpose_b ? k : n,
                                     transpose_b, c, m, k, n, &epilogue,
                                     nullptr, nullptr);
  }

  // Prepacking walks the exact (pc, jc) / (pc, blk) panel order of
  // panel_run, so gemm_prepacked streams the stored panels at the offsets
  // the on-the-fly path would have packed them to — the micro-kernel sees
  // identical bytes and the result matches pack-on-the-fly bitwise.
  PackedWeights pack_b(const float* b, std::size_t k, std::size_t n,
                       bool transpose_b) const override {
    PackedWeights packed;
    detail::pack_b_full<BlockedTraits>(this, b, k, n, transpose_b, packed);
    return packed;
  }

  PackedWeights pack_a(const float* a, std::size_t m,
                       std::size_t k) const override {
    PackedWeights packed;
    detail::pack_a_full<BlockedTraits>(this, a, m, k, packed);
    return packed;
  }

  void gemm_prepacked(const float* other, const PackedWeights& packed,
                      float* c, std::size_t m, std::size_t k, std::size_t n,
                      const Epilogue& epilogue) const override {
    ORCO_CHECK(packed.owner == this,
               "PackedWeights were packed by a different backend");
    std::fill(c, c + m * n, 0.0f);
    if (packed.side == 'B') {
      ORCO_CHECK(packed.rows == k && packed.cols == n,
                 "prepacked B is " << packed.rows << "x" << packed.cols
                                   << ", GEMM wants " << k << "x" << n);
      detail::panel_run<BlockedTraits>({other, k, false}, nullptr, 0, false, c,
                                       m, k, n, &epilogue, nullptr,
                                       packed.data.data());
    } else {
      ORCO_CHECK(packed.rows == m && packed.cols == k,
                 "prepacked A is " << packed.rows << "x" << packed.cols
                                   << ", GEMM wants " << m << "x" << k);
      detail::panel_run<BlockedTraits>({}, other, n, false, c, m, k, n,
                                       &epilogue, packed.data.data(), nullptr);
    }
  }

  // Dequantizes while packing A panels (x = lo[i] + q*scale[i], the same
  // float expression as core::dequantize_latents_into), so the int8 decode
  // path reduces in exactly the order the f32 path would after an explicit
  // dequantize — batched-vs-single bitwise equality carries over.
  void gemm_quantized(const std::uint8_t* a_q, const QuantHeader& qh,
                      const PackedWeights& packed, float* c, std::size_t m,
                      std::size_t k, std::size_t n,
                      const Epilogue& epilogue) const override {
    ORCO_CHECK(packed.owner == this,
               "PackedWeights were packed by a different backend");
    ORCO_CHECK(packed.side == 'B', "gemm_quantized needs a packed B operand");
    ORCO_CHECK(packed.rows == k && packed.cols == n,
               "prepacked B is " << packed.rows << "x" << packed.cols
                                 << ", GEMM wants " << k << "x" << n);
    std::fill(c, c + m * n, 0.0f);
    detail::AView av;
    av.lda = k;
    av.q8 = a_q;
    av.q_lo = qh.row_lo;
    av.q_scale = qh.row_scale;
    detail::panel_run<BlockedTraits>(av, nullptr, 0, false, c, m, k, n,
                                     &epilogue, nullptr, packed.data.data());
  }
};

std::atomic<const Backend*> g_default{nullptr};
thread_local const Backend* t_scope = nullptr;

struct RegistryEntry {
  const char* name;
  const Backend& (*get)();
};

// The single source of truth for registered backends; lookups, name
// listings, error messages and the orco_backend_active gauge value all
// derive from it.
constexpr RegistryEntry kRegistry[] = {
    {"reference", reference_backend},
    {"blocked", blocked_backend},
    {"simd", simd_backend},
};

std::string registry_names_joined() {
  std::string out;
  for (const auto& entry : kRegistry) {
    if (!out.empty()) out += ", ";
    out += entry.name;
  }
  return out;
}

// Publishes which backend is the process default as a metric (exported as
// orco_backend_active), so an operator can see from the metrics endpoint
// which kernels a deployment actually selected (the registry index:
// 0=reference, 1=blocked, 2=simd).
void publish_active_gauge(const Backend* backend) {
  int index = 0;
  for (std::size_t i = 0; i < std::size(kRegistry); ++i) {
    if (&kRegistry[i].get() == backend) {
      index = static_cast<int>(i);
      break;
    }
  }
  obs::global_registry().gauge("backend.active")->set(index);
}

}  // namespace

const Backend& backend_from_env_value(const char* value) {
  if (value == nullptr || *value == '\0') return reference_backend();
  if (const Backend* backend = find_backend(value)) return *backend;
  // An unknown name must not take the process down (a stale deployment env
  // var would crash every replica at startup) — but it must not be silent
  // either: log, count, and let orco_backend_active expose the fallback.
  ORCO_LOG_WARN("ORCO_BACKEND=\"" << value
                                  << "\" is not a registered kernel backend"
                                  << " (have: " << registry_names_joined()
                                  << "); falling back to \"reference\"");
  obs::global_registry().counter("backend.env_invalid")->inc();
  return reference_backend();
}

void Backend::gemm_fused(const float* a, const float* b, float* c,
                         std::size_t m, std::size_t k, std::size_t n,
                         bool transpose_b, const Epilogue& epilogue) const {
  std::fill(c, c + m * n, 0.0f);
  if (k > 0) {
    if (transpose_b) {
      gemm_nt(a, b, c, m, k, n);
    } else {
      gemm(a, b, c, m, k, n);
    }
  }
  apply_epilogue(c, m, n, epilogue);
}

// Base prepacking: materialise the operand row-major so the prepacked GEMM
// is a plain gemm_fused with transpose_b == false. For the reference
// backend this is already bitwise-faithful (its NT path materialises the
// same transpose per call) and removes that per-call transpose.
PackedWeights Backend::pack_b(const float* b, std::size_t k, std::size_t n,
                              bool transpose_b) const {
  PackedWeights packed;
  packed.owner = this;
  packed.side = 'B';
  packed.rows = k;
  packed.cols = n;
  packed.data.resize(k * n);
  if (transpose_b) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t p = 0; p < k; ++p) {
        packed.data[p * n + j] = b[j * k + p];
      }
    }
  } else {
    std::copy(b, b + k * n, packed.data.begin());
  }
  return packed;
}

PackedWeights Backend::pack_a(const float* a, std::size_t m,
                              std::size_t k) const {
  PackedWeights packed;
  packed.owner = this;
  packed.side = 'A';
  packed.rows = m;
  packed.cols = k;
  packed.data.assign(a, a + m * k);
  return packed;
}

void Backend::gemm_prepacked(const float* other, const PackedWeights& packed,
                             float* c, std::size_t m, std::size_t k,
                             std::size_t n, const Epilogue& epilogue) const {
  ORCO_CHECK(packed.owner == this,
             "PackedWeights were packed by a different backend");
  if (packed.side == 'B') {
    ORCO_CHECK(packed.rows == k && packed.cols == n,
               "prepacked B is " << packed.rows << "x" << packed.cols
                                 << ", GEMM wants " << k << "x" << n);
    gemm_fused(other, packed.data.data(), c, m, k, n, /*transpose_b=*/false,
               epilogue);
  } else {
    ORCO_CHECK(packed.rows == m && packed.cols == k,
               "prepacked A is " << packed.rows << "x" << packed.cols
                                 << ", GEMM wants " << m << "x" << k);
    gemm_fused(packed.data.data(), other, c, m, k, n, /*transpose_b=*/false,
               epilogue);
  }
}

// Base quantized path: dequantize the codes row-wise into thread-local
// scratch with the same expression the panel-fused overrides use
// (x = lo + q*scale in float), then run the ordinary prepacked GEMM. Exact
// same values as the fused paths — only slower, so backends without a
// fused int8 pack (reference) stay correct for free.
void Backend::gemm_quantized(const std::uint8_t* a_q, const QuantHeader& qh,
                             const PackedWeights& packed, float* c,
                             std::size_t m, std::size_t k, std::size_t n,
                             const Epilogue& epilogue) const {
  ORCO_CHECK(packed.side == 'B', "gemm_quantized needs a packed B operand");
  thread_local std::vector<float> dequant;
  dequant.resize(m * k);
  for (std::size_t i = 0; i < m; ++i) {
    const std::uint8_t* src = a_q + i * k;
    float* dst = dequant.data() + i * k;
    const float lo = qh.row_lo[i];
    const float scale = qh.row_scale[i];
    for (std::size_t p = 0; p < k; ++p) {
      dst[p] = lo + static_cast<float>(src[p]) * scale;
    }
  }
  gemm_prepacked(dequant.data(), packed, c, m, k, n, epilogue);
}

const Backend& reference_backend() {
  static const ReferenceBackend backend;
  return backend;
}

const Backend& blocked_backend() {
  static const BlockedBackend backend;
  return backend;
}

const Backend* find_backend(const std::string& name) {
  for (const auto& entry : kRegistry) {
    if (name == entry.name) return &entry.get();
  }
  return nullptr;
}

const Backend* resolve_backend(const std::string& name) {
  if (name.empty()) return nullptr;
  const Backend* backend = find_backend(name);
  ORCO_CHECK(backend != nullptr,
             "unknown kernel backend \"" << name << "\" (have: "
                                         << registry_names_joined() << ")");
  return backend;
}

std::vector<std::string> backend_names() {
  std::vector<std::string> names;
  for (const auto& entry : kRegistry) names.emplace_back(entry.name);
  return names;
}

void set_backend(const std::string& name) {
  const Backend* backend = find_backend(name);
  ORCO_CHECK(backend != nullptr,
             "unknown kernel backend \"" << name << "\" (have: "
                                         << registry_names_joined() << ")");
  g_default.store(backend, std::memory_order_release);
  publish_active_gauge(backend);
}

void set_backend(const Backend& backend) {
  g_default.store(&backend, std::memory_order_release);
  publish_active_gauge(&backend);
}

const Backend& current_backend() {
  if (t_scope != nullptr) return *t_scope;
  const Backend* backend = g_default.load(std::memory_order_acquire);
  if (backend == nullptr) {
    // First use: publish the env-derived default, but never clobber a
    // concurrent set_backend() — an explicit choice must win the race.
    const Backend* env_default =
        &backend_from_env_value(std::getenv("ORCO_BACKEND"));
    if (g_default.compare_exchange_strong(backend, env_default,
                                          std::memory_order_acq_rel)) {
      backend = env_default;
      publish_active_gauge(backend);
    }
    // On CAS failure `backend` was reloaded with the concurrent store.
  }
  return *backend;
}

BackendScope::BackendScope(const Backend* backend) : prev_(t_scope) {
  if (backend != nullptr) t_scope = backend;
}

BackendScope::~BackendScope() { t_scope = prev_; }

void apply_epilogue(float* c, std::size_t m, std::size_t n,
                    const Epilogue& epilogue) {
  for (std::size_t i = 0; i < m; ++i) {
    float* ci = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      float v = ci[j];
      if (epilogue.bias) {
        v += epilogue.bias_per_row ? epilogue.bias[i] : epilogue.bias[j];
      }
      ci[j] = apply_act(v, epilogue.act, epilogue.leaky_alpha);
    }
  }
}

void set_gemm_parallelism(bool enabled) { g_parallel.store(enabled); }
bool gemm_parallelism() { return g_parallel.load(); }

void set_thread_gemm_parallelism(bool enabled) { t_parallel = enabled; }
bool thread_gemm_parallelism() { return t_parallel; }

namespace detail {

common::ThreadPool* gemm_pool(std::size_t m, std::size_t n) {
  return (g_parallel.load() && t_parallel && m * n >= kParallelThreshold)
             ? &common::ThreadPool::global()
             : nullptr;
}

}  // namespace detail

}  // namespace orco::tensor
