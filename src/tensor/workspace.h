// Workspace — a bump-allocated, resettable float arena for kernel scratch.
//
// The inference hot path (serving decode, background-trainer validation)
// needs short-lived scratch at every layer boundary: im2col column
// matrices, epilogue temporaries, packed panels. Allocating those from the
// heap per call is what this arena removes: alloc() is a pointer bump,
// reset()/rewind() recycle the memory without touching the allocator, and
// the arena grows only until it has seen the workload's high-water mark —
// after warmup, a steady-state pass through the same model performs zero
// heap allocations.
//
// Growth without invalidation: a bump arena cannot extend a live block in
// place, so an overflowing alloc() opens a fresh block while earlier blocks
// (and every pointer into them) stay valid until the next reset(). reset()
// then coalesces: if the workload spilled past the first block, the arena
// replaces its blocks with one block sized to the high-water mark, so the
// next pass runs out of a single contiguous slab and never spills again.
//
// Thread-safety: none — a Workspace belongs to exactly one thread at a
// time (the per-shard-worker InferContext rule). Alignment: every alloc()
// is 64-byte aligned so vectorized kernels never straddle cache lines.
#pragma once

#include <cstddef>
#include <vector>

namespace orco::tensor {

class Workspace {
 public:
  Workspace() = default;

  /// Pre-sizes the arena to `floats` capacity in one block (optional; the
  /// arena warms itself up on first use otherwise).
  explicit Workspace(std::size_t floats) { reserve(floats); }

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;
  Workspace(Workspace&&) = default;
  Workspace& operator=(Workspace&&) = default;

  /// Bump-allocates `n` floats (64-byte aligned, uninitialised). Pointers
  /// stay valid until reset()/rewind() passes back over them. n == 0
  /// returns a non-null pointer to the current bump position.
  float* alloc(std::size_t n);

  /// Checkpoint of the current bump position, for nested scratch scopes.
  struct Mark {
    std::size_t block = 0;
    std::size_t offset = 0;
  };

  Mark mark() const noexcept { return Mark{block_, offset_}; }

  /// Releases every allocation made after `m` (LIFO only: marks must be
  /// rewound in reverse order of taking them).
  void rewind(Mark m);

  /// Releases everything. If allocations spilled past the first block, the
  /// blocks are coalesced into one slab of high_water() capacity so the
  /// next pass is allocation-free.
  void reset();

  /// Ensures one contiguous block of at least `floats` capacity (existing
  /// allocations must have been reset; call before the first pass to skip
  /// warmup growth).
  void reserve(std::size_t floats);

  /// Total float capacity across blocks.
  std::size_t capacity() const noexcept;

  /// Floats currently handed out.
  std::size_t used() const noexcept;

  /// Largest used() ever observed (what reset() coalesces to).
  std::size_t high_water() const noexcept { return high_water_; }

  /// Heap blocks currently owned — 1 in steady state; >1 only between an
  /// overflow and the next reset().
  std::size_t block_count() const noexcept { return blocks_.size(); }

  /// Rounds `n` up to the arena's allocation grain (64-byte lines), i.e.
  /// the capacity one alloc(n) actually consumes. Lets plan compilers
  /// precompute an exact high-water from per-layer scratch requirements.
  static std::size_t aligned_floats(std::size_t n) { return aligned(n); }

 private:
  struct Block {
    std::vector<float> storage;  // size + alignment slack
    float* base = nullptr;       // 64-byte-aligned cursor into storage
    std::size_t size = 0;        // usable floats at base
  };

  /// Smallest first block: one 28x28 image of scratch.
  static constexpr std::size_t kMinBlockFloats = 1024;
  /// 64-byte alignment in floats.
  static constexpr std::size_t kAlignFloats = 16;

  static std::size_t aligned(std::size_t n) {
    return (n + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
  }

  void note_high_water() {
    const std::size_t u = used();
    if (u > high_water_) high_water_ = u;
  }

  std::vector<Block> blocks_;
  std::size_t block_ = 0;   // block the bump pointer lives in
  std::size_t offset_ = 0;  // bump offset within blocks_[block_]
  std::size_t high_water_ = 0;
};

/// RAII scratch scope: takes a mark on construction, rewinds on
/// destruction. The idiom for per-sample scratch inside a layer kernel.
class WorkspaceScope {
 public:
  explicit WorkspaceScope(Workspace& ws) : ws_(ws), mark_(ws.mark()) {}
  ~WorkspaceScope() { ws_.rewind(mark_); }

  WorkspaceScope(const WorkspaceScope&) = delete;
  WorkspaceScope& operator=(const WorkspaceScope&) = delete;

 private:
  Workspace& ws_;
  Workspace::Mark mark_;
};

}  // namespace orco::tensor
