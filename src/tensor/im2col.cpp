#include "tensor/im2col.h"

#include "common/check.h"

namespace orco::tensor {

std::size_t Conv2dGeometry::out_h() const {
  ORCO_CHECK(in_h + 2 * pad >= kernel_h, "conv kernel taller than padded input");
  return (in_h + 2 * pad - kernel_h) / stride + 1;
}

std::size_t Conv2dGeometry::out_w() const {
  ORCO_CHECK(in_w + 2 * pad >= kernel_w, "conv kernel wider than padded input");
  return (in_w + 2 * pad - kernel_w) / stride + 1;
}

Tensor im2col(std::span<const float> image, const Conv2dGeometry& g) {
  const std::size_t rows = g.in_channels * g.kernel_h * g.kernel_w;
  Tensor cols({rows, g.out_h() * g.out_w()});
  im2col_into(image, g, cols.data());
  return cols;
}

void im2col_into(std::span<const float> image, const Conv2dGeometry& g,
                 std::span<float> columns) {
  ORCO_CHECK(image.size() == g.in_channels * g.in_h * g.in_w,
             "im2col image size mismatch: " << image.size() << " vs "
                                            << g.in_channels * g.in_h * g.in_w);
  const std::size_t oh = g.out_h(), ow = g.out_w();
  const std::size_t rows = g.in_channels * g.kernel_h * g.kernel_w;
  ORCO_CHECK(columns.size() == rows * oh * ow,
             "im2col column scratch is " << columns.size() << " floats, want "
                                         << rows * oh * ow);
  auto out = columns;

  std::size_t r = 0;
  for (std::size_t c = 0; c < g.in_channels; ++c) {
    for (std::size_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel_w; ++kw, ++r) {
        float* dst = out.data() + r * oh * ow;
        for (std::size_t y = 0; y < oh; ++y) {
          // Signed arithmetic: padding can push source coords negative.
          const std::ptrdiff_t sy =
              static_cast<std::ptrdiff_t>(y * g.stride + kh) -
              static_cast<std::ptrdiff_t>(g.pad);
          for (std::size_t x = 0; x < ow; ++x) {
            const std::ptrdiff_t sx =
                static_cast<std::ptrdiff_t>(x * g.stride + kw) -
                static_cast<std::ptrdiff_t>(g.pad);
            float v = 0.0f;
            if (sy >= 0 && sy < static_cast<std::ptrdiff_t>(g.in_h) &&
                sx >= 0 && sx < static_cast<std::ptrdiff_t>(g.in_w)) {
              v = image[(c * g.in_h + static_cast<std::size_t>(sy)) * g.in_w +
                        static_cast<std::size_t>(sx)];
            }
            dst[y * ow + x] = v;
          }
        }
      }
    }
  }
}

void col2im(const Tensor& columns, const Conv2dGeometry& g,
            std::span<float> image_grad) {
  const std::size_t oh = g.out_h(), ow = g.out_w();
  const std::size_t rows = g.in_channels * g.kernel_h * g.kernel_w;
  ORCO_CHECK(columns.rank() == 2 && columns.dim(0) == rows &&
                 columns.dim(1) == oh * ow,
             "col2im shape mismatch: " << shape_to_string(columns.shape()));
  col2im(std::span<const float>(columns.data()), g, image_grad);
}

void col2im(std::span<const float> columns, const Conv2dGeometry& g,
            std::span<float> image_grad) {
  const std::size_t oh = g.out_h(), ow = g.out_w();
  const std::size_t rows = g.in_channels * g.kernel_h * g.kernel_w;
  ORCO_CHECK(columns.size() == rows * oh * ow,
             "col2im column scratch is " << columns.size() << " floats, want "
                                         << rows * oh * ow);
  ORCO_CHECK(image_grad.size() == g.in_channels * g.in_h * g.in_w,
             "col2im image size mismatch");
  const auto src = columns;

  std::size_t r = 0;
  for (std::size_t c = 0; c < g.in_channels; ++c) {
    for (std::size_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel_w; ++kw, ++r) {
        const float* col = src.data() + r * oh * ow;
        for (std::size_t y = 0; y < oh; ++y) {
          const std::ptrdiff_t sy =
              static_cast<std::ptrdiff_t>(y * g.stride + kh) -
              static_cast<std::ptrdiff_t>(g.pad);
          if (sy < 0 || sy >= static_cast<std::ptrdiff_t>(g.in_h)) continue;
          for (std::size_t x = 0; x < ow; ++x) {
            const std::ptrdiff_t sx =
                static_cast<std::ptrdiff_t>(x * g.stride + kw) -
                static_cast<std::ptrdiff_t>(g.pad);
            if (sx < 0 || sx >= static_cast<std::ptrdiff_t>(g.in_w)) continue;
            image_grad[(c * g.in_h + static_cast<std::size_t>(sy)) * g.in_w +
                       static_cast<std::size_t>(sx)] += col[y * ow + x];
          }
        }
      }
    }
  }
}

}  // namespace orco::tensor
