#include "serve/reconstruction_cache.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <utility>

#include "common/check.h"

namespace orco::serve {

ReconstructionCache::ReconstructionCache(
    const ReconstructionCacheConfig& config)
    : config_(config) {}

std::optional<std::string> ReconstructionCache::key_for(
    ClusterId cluster, std::uint64_t version, const Tensor& latent) const {
  // (cluster, version) prefix, then the quantized latent codes. See the
  // header: the affine range is snapped outward to a fixed 1/64 grid so
  // noise on the extreme elements does not perturb the header bytes —
  // keying on core/quantization's exact-min/max wire payload would make
  // near-identical latents never collide.
  if (!enabled()) return std::nullopt;
  const std::span<const float> values = latent.data();
  // Non-finite latents are uncacheable: an Inf extreme degenerates the
  // affine scale to 0 and NaN codes are undefined through lround, which
  // would alias arbitrary latents onto one key (a wrong cached answer,
  // not just a miss).
  for (const float v : values) {
    if (!std::isfinite(v)) return std::nullopt;
  }
  std::string key;
  key.reserve(2 * sizeof(std::uint64_t) + 2 * sizeof(float) +
              values.size() * core::bytes_per_value(config_.key_precision));
  const auto append = [&key](const void* bytes, std::size_t n) {
    key.append(static_cast<const char*>(bytes), n);
  };
  append(&cluster, sizeof(cluster));
  append(&version, sizeof(version));
  if (config_.key_precision == core::LatentPrecision::kFloat32) {
    append(values.data(), values.size() * sizeof(float));
    return key;
  }
  float mn = values.empty() ? 0.0f : values[0];
  float mx = mn;
  for (const float v : values) {
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  constexpr float kGrid = 64.0f;  // snap range endpoints to 1/64 steps
  const float lo = std::floor(mn * kGrid) / kGrid;
  float hi = std::ceil(mx * kGrid) / kGrid;
  if (hi - lo < 1.0f / kGrid) hi = lo + 1.0f / kGrid;
  // Finite inputs can still overflow the snapped range (|v| ~ 1e37 pushes
  // mn*kGrid or hi-lo to inf), which would zero the scale and alias
  // arbitrary latents onto one key — same wrong-hit hazard the isfinite
  // guard above exists for. Such latents are garbage for a sigmoid-range
  // decoder anyway; just don't cache them.
  if (!std::isfinite(lo) || !std::isfinite(hi) || !std::isfinite(hi - lo)) {
    return std::nullopt;
  }
  append(&lo, sizeof(lo));
  append(&hi, sizeof(hi));
  const std::uint32_t max_code =
      config_.key_precision == core::LatentPrecision::kFixed16 ? 65535u
                                                               : 255u;
  const float scale = static_cast<float>(max_code) / (hi - lo);
  for (const float v : values) {
    const long rounded = std::lround((v - lo) * scale);
    const std::uint32_t code = static_cast<std::uint32_t>(
        std::clamp<long>(rounded, 0, static_cast<long>(max_code)));
    if (config_.key_precision == core::LatentPrecision::kFixed16) {
      const std::uint16_t code16 = static_cast<std::uint16_t>(code);
      append(&code16, sizeof(code16));
    } else {
      const std::uint8_t code8 = static_cast<std::uint8_t>(code);
      append(&code8, sizeof(code8));
    }
  }
  return key;
}

const Tensor* ReconstructionCache::lookup(const std::string& key) {
  if (!enabled()) return nullptr;
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return &it->second->reconstruction;
}

void ReconstructionCache::insert(ClusterId cluster, std::string key,
                                 Tensor reconstruction) {
  if (!enabled()) return;
  if (const auto it = entries_.find(key); it != entries_.end()) {
    it->second->reconstruction = std::move(reconstruction);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  while (entries_.size() >= config_.capacity) {
    entries_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(Entry{key, cluster, std::move(reconstruction)});
  entries_.emplace(std::move(key), lru_.begin());
  ++stats_.insertions;
}

const Tensor* ReconstructionCache::lookup(ClusterId cluster,
                                          std::uint64_t version,
                                          const Tensor& latent) {
  const auto key = key_for(cluster, version, latent);
  return key.has_value() ? lookup(*key) : nullptr;
}

void ReconstructionCache::insert(ClusterId cluster, std::uint64_t version,
                                 const Tensor& latent, Tensor reconstruction) {
  auto key = key_for(cluster, version, latent);
  if (key.has_value()) insert(cluster, *std::move(key), std::move(reconstruction));
}

void ReconstructionCache::invalidate(ClusterId cluster) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->cluster != cluster) {
      ++it;
      continue;
    }
    entries_.erase(it->key);
    it = lru_.erase(it);
    ++stats_.invalidated;
  }
}

void ReconstructionCache::clear() {
  entries_.clear();
  lru_.clear();
}

}  // namespace orco::serve
