// Per-tenant quality-of-service policy for the serving runtime.
//
// A TenantPolicy travels from ServeConfig (the default for unregistered
// tenants) through ServerRuntime::register_cluster into the shard's
// BatchQueue, where it drives two decisions:
//   admission — each tenant gets its own queue quota, and when the queue is
//   at capacity an arriving higher-priority request evicts the newest
//   pending request of a strictly lower-priority tenant instead of being
//   shed itself;
//   scheduling — pop_batch picks the next cluster by weighted priority with
//   an aging term, so high-priority tenants are served first but a
//   low-priority tenant's head-of-line request grows in score with its wait
//   and can never starve.
#pragma once

#include <algorithm>
#include <cstddef>

namespace orco::serve {

enum class Priority { kHigh, kNormal, kLow };

inline const char* to_string(Priority priority) {
  switch (priority) {
    case Priority::kHigh: return "high";
    case Priority::kNormal: return "normal";
    case Priority::kLow: return "low";
  }
  return "invalid";
}

struct TenantPolicy {
  Priority priority = Priority::kNormal;
  /// Max pending requests this tenant may hold in its shard queue; pushes
  /// beyond it are shed even when the queue has global headroom. 0 means
  /// "bounded only by the queue capacity".
  std::size_t queue_quota = 0;
  /// Relative scheduling share within a priority class (e.g. a weight-2
  /// tenant is picked twice as readily as a weight-1 peer of the same
  /// class). Clamped to a small positive floor so a zero weight cannot
  /// starve a tenant outright.
  double weight = 1.0;

  /// Static scheduling weight: the priority-class base (high 4, normal 2,
  /// low 1) scaled by the tenant weight. pop_batch multiplies this by an
  /// aging factor of the head request's wait time.
  double schedule_weight() const {
    double base = 1.0;
    switch (priority) {
      case Priority::kHigh: base = 4.0; break;
      case Priority::kNormal: base = 2.0; break;
      case Priority::kLow: base = 1.0; break;
    }
    return base * std::max(weight, 1e-6);
  }
};

}  // namespace orco::serve
