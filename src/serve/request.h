// Request/response types of the multi-cluster serving runtime.
//
// A DecodeRequest carries one latent vector from a cluster's uplink; the
// runtime routes it to the shard owning that cluster, coalesces it with
// other pending latents for the same tenant, and answers with the decoded
// reconstruction. Responses travel back through per-request futures.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "core/quantization.h"
#include "tensor/tensor.h"

namespace orco::serve {

using tensor::Tensor;

/// Stable tenant identifier; hashed onto shards (see shard_for()).
using ClusterId = std::uint64_t;
using RequestId = std::uint64_t;

enum class ResponseStatus {
  kOk,              // decoded successfully
  kShed,            // rejected by backpressure: the shard queue was full
  kShutdown,        // runtime not accepting traffic (stopped or stopping)
  kUnknownCluster,  // no tenant registered under this cluster id
  kBadRequest,      // latent shape does not match the tenant's latent_dim
  kInternalError,   // tenant decode threw; see the response's detail field
};

inline const char* to_string(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk: return "ok";
    case ResponseStatus::kShed: return "shed";
    case ResponseStatus::kShutdown: return "shutdown";
    case ResponseStatus::kUnknownCluster: return "unknown-cluster";
    case ResponseStatus::kBadRequest: return "bad-request";
    case ResponseStatus::kInternalError: return "internal-error";
  }
  return "invalid";
}

struct DecodeRequest {
  ClusterId cluster = 0;
  RequestId id = 0;
  Tensor latent;  // (M) or (1, M) for the tenant's latent dimension M
  /// Quantized uplink alternative to `latent`: when `quantized` is set the
  /// request carries the wire payload (core/quantization.h framing — affine
  /// header followed by codes) and `latent` stays empty. The shard decodes
  /// it row-wise, or — for kFixed8 payloads on an int8_decode tenant —
  /// feeds the codes straight into the decoder GEMM.
  std::vector<std::uint8_t> payload;
  core::LatentPrecision precision = core::LatentPrecision::kFloat32;
  bool quantized = false;
  std::chrono::steady_clock::time_point enqueued_at;
  /// Sampling decision made once at submit time (obs tracing): a traced
  /// request records its whole span tree (queue wait, assembly, decode,
  /// respond under the request span); an untraced one records nothing.
  bool traced = false;
};

struct DecodeResponse {
  RequestId id = 0;
  ResponseStatus status = ResponseStatus::kOk;
  Tensor reconstruction;        // (N) on kOk; empty otherwise
  std::string detail;           // human-readable cause on kInternalError
  double latency_us = 0.0;      // enqueue -> response
  std::size_t batch_size = 0;   // occupancy of the batch that served it
  /// Decoder generation that produced the reconstruction: the registry
  /// snapshot's version on the hot-swap path, or the live tenant's
  /// EdgeServer::model_version() on the legacy direct path. 0 on errors.
  /// Exactly one version answers any request — a batch pins its snapshot
  /// for its whole fan-out, swaps land only between batches.
  std::uint64_t model_version = 0;
  /// True when the reconstruction came from the shard's latent-keyed
  /// ReconstructionCache instead of a decode.
  bool cache_hit = false;
};

/// A queued request plus the promise that fulfils its caller's future.
struct PendingRequest {
  DecodeRequest request;
  std::promise<DecodeResponse> promise;
  /// Set by whoever resolves the promise; the shard's answer-all scope
  /// guard uses it to find requests left unanswered by an exception.
  bool answered = false;
  /// Stamped by BatchQueue::extract_cluster when the request leaves the
  /// queue: enqueued_at -> popped_at is the queue-wait stage.
  std::chrono::steady_clock::time_point popped_at;

  PendingRequest() = default;
  PendingRequest(DecodeRequest req, std::promise<DecodeResponse> prom)
      : request(std::move(req)), promise(std::move(prom)) {}
  PendingRequest(PendingRequest&&) = default;
  PendingRequest& operator=(PendingRequest&&) = default;
  PendingRequest(const PendingRequest&) = delete;
  PendingRequest& operator=(const PendingRequest&) = delete;
};

/// Resolves a pending request's promise with a bare status (no payload) —
/// the shared answer for shed/evicted requests.
inline void resolve_with_status(PendingRequest& pending,
                                ResponseStatus status) {
  DecodeResponse response;
  response.id = pending.request.id;
  response.status = status;
  pending.promise.set_value(std::move(response));
  pending.answered = true;
}

}  // namespace orco::serve
