#include "serve/telemetry.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/config.h"

namespace orco::serve {

LatencyHistogram::LatencyHistogram() : buckets_(obs::kHistBucketCount, 0) {}

void LatencyHistogram::record(double us) {
  us = std::max(0.0, us);
  buckets_[bucket_for(us)]++;
  ++count_;
  sum_us_ += us;
  max_us_ = std::max(max_us_, us);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    buckets_[b] += other.buckets_[b];
  }
  count_ += other.count_;
  sum_us_ += other.sum_us_;
  max_us_ = std::max(max_us_, other.max_us_);
}

double LatencyHistogram::mean_us() const {
  return count_ > 0 ? sum_us_ / static_cast<double>(count_) : 0.0;
}

double LatencyHistogram::quantile(double q) const {
  return obs::hist_quantile(buckets_.data(), buckets_.size(), count_, max_us_,
                            q);
}

namespace {

constexpr const char* kStageNames[Telemetry::kStageCount] = {
    "queue_wait", "assembly", "decode", "respond"};

obs::Labels tenant_labels(ClusterId cluster) {
  return {{"tenant", std::to_string(cluster)}};
}

}  // namespace

Telemetry::Telemetry(bool per_tenant)
    : per_tenant_(per_tenant),
      submitted_(registry_.counter("serve.submitted")),
      shed_(registry_.counter("serve.shed")),
      rejected_(registry_.counter("serve.rejected")),
      cache_hits_(registry_.counter("serve.cache_hits")),
      cache_misses_(registry_.counter("serve.cache_misses")),
      batches_(registry_.counter("serve.batches")),
      batch_requests_(registry_.counter("serve.batch_requests")),
      max_occupancy_(registry_.gauge("serve.max_batch_occupancy")),
      latency_(registry_.histogram("serve.latency_us")) {}

Telemetry::TenantCells& Telemetry::tenant_cells(ClusterId cluster) {
  {
    common::ReaderMutexLock lock(tenants_mu_);
    const auto it = tenants_.find(cluster);
    if (it != tenants_.end()) return *it->second;
  }
  common::WriterMutexLock lock(tenants_mu_);
  auto& slot = tenants_[cluster];
  if (slot == nullptr) {
    const obs::Labels labels = tenant_labels(cluster);
    auto cells = std::make_unique<TenantCells>();
    cells->submitted = registry_.counter("serve.tenant.submitted", labels);
    cells->shed = registry_.counter("serve.tenant.shed", labels);
    cells->rejected = registry_.counter("serve.tenant.rejected", labels);
    cells->cache_hits = registry_.counter("serve.tenant.cache_hits", labels);
    cells->cache_misses =
        registry_.counter("serve.tenant.cache_misses", labels);
    cells->latency =
        registry_.histogram("serve.tenant.latency_us", labels, /*cells=*/1);
    for (std::size_t s = 0; s < kStageCount; ++s) {
      cells->stage_us[s] = registry_.counter(
          std::string("serve.stage.") + kStageNames[s] + "_us", labels);
      cells->stage_requests[s] = registry_.counter(
          std::string("serve.stage.") + kStageNames[s] + "_requests", labels);
    }
    slot = std::move(cells);
  }
  return *slot;
}

const Telemetry::TenantCells* Telemetry::find_tenant(ClusterId cluster) const {
  common::ReaderMutexLock lock(tenants_mu_);
  const auto it = tenants_.find(cluster);
  return it == tenants_.end() ? nullptr : it->second.get();
}

void Telemetry::record_submitted() {
  if (!obs::metrics_enabled()) return;
  submitted_->inc();
}

void Telemetry::record_shed() {
  if (!obs::metrics_enabled()) return;
  shed_->inc();
}

void Telemetry::record_rejected() {
  if (!obs::metrics_enabled()) return;
  rejected_->inc();
}

void Telemetry::record_batch(std::size_t occupancy) {
  if (!obs::metrics_enabled()) return;
  batches_->inc();
  batch_requests_->inc(occupancy);
  max_occupancy_->max_of(static_cast<double>(occupancy));
}

void Telemetry::record_completed(double latency_us) {
  if (!obs::metrics_enabled()) return;
  latency_->record(latency_us);
}

void Telemetry::record_submitted(ClusterId cluster) {
  if (!obs::metrics_enabled()) return;
  submitted_->inc();
  if (per_tenant_) tenant_cells(cluster).submitted->inc();
}

void Telemetry::record_shed(ClusterId cluster) {
  if (!obs::metrics_enabled()) return;
  shed_->inc();
  if (per_tenant_) tenant_cells(cluster).shed->inc();
}

void Telemetry::record_rejected(ClusterId cluster) {
  if (!obs::metrics_enabled()) return;
  rejected_->inc();
  if (per_tenant_) tenant_cells(cluster).rejected->inc();
}

void Telemetry::record_completed(ClusterId cluster, double latency_us) {
  if (!obs::metrics_enabled()) return;
  latency_->record(latency_us);
  if (per_tenant_) tenant_cells(cluster).latency->record(latency_us);
}

void Telemetry::record_cache_hit(ClusterId cluster) {
  if (!obs::metrics_enabled()) return;
  cache_hits_->inc();
  if (per_tenant_) tenant_cells(cluster).cache_hits->inc();
}

void Telemetry::record_cache_miss(ClusterId cluster) {
  if (!obs::metrics_enabled()) return;
  cache_misses_->inc();
  if (per_tenant_) tenant_cells(cluster).cache_misses->inc();
}

void Telemetry::record_model_version(ClusterId cluster, std::uint64_t version,
                                     double staleness_us) {
  if (!obs::metrics_enabled() || !per_tenant_) return;
  TenantCells& cells = tenant_cells(cluster);
  // Single writer per tenant (its shard worker): the load-compare-store is
  // not a race, only the snapshot readers are concurrent.
  const std::uint64_t prev =
      cells.model_version.load(std::memory_order_relaxed);
  if (prev != 0 && prev != version) {
    cells.model_swaps.fetch_add(1, std::memory_order_relaxed);
  }
  cells.model_version.store(version, std::memory_order_relaxed);
  cells.model_staleness_us.store(staleness_us, std::memory_order_relaxed);
}

void Telemetry::record_stage(ClusterId cluster, Stage stage, double stage_us,
                             std::uint64_t requests) {
  if (!obs::metrics_enabled() || !per_tenant_) return;
  TenantCells& cells = tenant_cells(cluster);
  const std::size_t s = static_cast<std::size_t>(stage);
  cells.stage_us[s]->inc(
      static_cast<std::uint64_t>(std::llround(std::max(0.0, stage_us))));
  cells.stage_requests[s]->inc(requests);
}

TenantSnapshot Telemetry::snapshot_of(const TenantCells& cells) {
  TenantSnapshot s;
  const obs::HistogramSnapshot latency = cells.latency->snapshot();
  s.submitted = cells.submitted->value();
  s.completed = latency.count;
  s.shed = cells.shed->value();
  s.rejected = cells.rejected->value();
  s.cache_hits = cells.cache_hits->value();
  s.cache_misses = cells.cache_misses->value();
  s.model_version = cells.model_version.load(std::memory_order_relaxed);
  s.model_swaps = cells.model_swaps.load(std::memory_order_relaxed);
  s.model_staleness_us =
      cells.model_staleness_us.load(std::memory_order_relaxed);
  s.p50_us = latency.quantile(0.50);
  s.p99_us = latency.quantile(0.99);
  s.mean_latency_us = latency.mean_us();
  s.max_latency_us = latency.max_us;
  return s;
}

TenantSnapshot Telemetry::tenant_snapshot(ClusterId cluster) const {
  const TenantCells* cells = find_tenant(cluster);
  return cells == nullptr ? TenantSnapshot{} : snapshot_of(*cells);
}

std::map<ClusterId, TenantSnapshot> Telemetry::tenant_snapshots() const {
  common::ReaderMutexLock lock(tenants_mu_);
  std::map<ClusterId, TenantSnapshot> out;
  for (const auto& [cluster, cells] : tenants_) {
    out.emplace(cluster, snapshot_of(*cells));
  }
  return out;
}

std::array<Telemetry::StageSnapshot, Telemetry::kStageCount>
Telemetry::stage_snapshot(ClusterId cluster) const {
  std::array<StageSnapshot, kStageCount> out{};
  const TenantCells* cells = find_tenant(cluster);
  if (cells == nullptr) return out;
  for (std::size_t s = 0; s < kStageCount; ++s) {
    out[s].us = cells->stage_us[s]->value();
    out[s].requests = cells->stage_requests[s]->value();
  }
  return out;
}

common::Table Telemetry::tenant_report() const {
  const auto snapshots = tenant_snapshots();
  common::Table t({"cluster", "submitted", "completed", "shed", "rejected",
                   "p50 us", "p99 us", "cache hit%", "model ver", "swaps",
                   "staleness ms"});
  for (const auto& [cluster, s] : snapshots) {
    const std::uint64_t looked_up = s.cache_hits + s.cache_misses;
    const double hit_pct =
        looked_up > 0 ? 100.0 * static_cast<double>(s.cache_hits) /
                            static_cast<double>(looked_up)
                      : 0.0;
    t.add_row({std::to_string(cluster), std::to_string(s.submitted),
               std::to_string(s.completed), std::to_string(s.shed),
               std::to_string(s.rejected), common::Table::num(s.p50_us, 1),
               common::Table::num(s.p99_us, 1), common::Table::num(hit_pct, 1),
               std::to_string(s.model_version), std::to_string(s.model_swaps),
               common::Table::num(s.model_staleness_us / 1000.0, 1)});
  }
  return t;
}

common::Table Telemetry::stage_report() const {
  common::Table t({"cluster", "queue wait us", "assembly us", "decode us",
                   "respond us", "accounted us"});
  std::vector<ClusterId> clusters;
  {
    common::ReaderMutexLock lock(tenants_mu_);
    clusters.reserve(tenants_.size());
    for (const auto& [cluster, cells] : tenants_) clusters.push_back(cluster);
  }
  for (const ClusterId cluster : clusters) {
    const auto stages = stage_snapshot(cluster);
    double accounted = 0.0;
    std::vector<std::string> row{std::to_string(cluster)};
    for (const StageSnapshot& s : stages) {
      accounted += s.mean_us();
      row.push_back(common::Table::num(s.mean_us(), 1));
    }
    row.push_back(common::Table::num(accounted, 1));
    t.add_row(std::move(row));
  }
  return t;
}

TelemetrySnapshot Telemetry::snapshot() const {
  TelemetrySnapshot s;
  const obs::HistogramSnapshot latency = latency_->snapshot();
  s.submitted = submitted_->value();
  s.completed = latency.count;
  s.shed = shed_->value();
  s.rejected = rejected_->value();
  s.batches = batches_->value();
  s.cache_hits = cache_hits_->value();
  s.cache_misses = cache_misses_->value();
  const std::uint64_t batch_requests = batch_requests_->value();
  s.mean_batch_occupancy =
      s.batches > 0 ? static_cast<double>(batch_requests) /
                          static_cast<double>(s.batches)
                    : 0.0;
  s.max_batch_occupancy =
      static_cast<std::size_t>(max_occupancy_->value());
  s.p50_us = latency.quantile(0.50);
  s.p95_us = latency.quantile(0.95);
  s.p99_us = latency.quantile(0.99);
  s.mean_latency_us = latency.mean_us();
  s.max_latency_us = latency.max_us;
  return s;
}

common::Table Telemetry::report(double elapsed_s) const {
  const TelemetrySnapshot s = snapshot();
  common::Table t({"metric", "value"});
  t.add_row({"submitted", std::to_string(s.submitted)});
  t.add_row({"completed", std::to_string(s.completed)});
  t.add_row({"shed", std::to_string(s.shed)});
  t.add_row({"rejected", std::to_string(s.rejected)});
  t.add_row({"batches", std::to_string(s.batches)});
  if (s.cache_hits + s.cache_misses > 0) {
    t.add_row({"cache hits", std::to_string(s.cache_hits)});
    t.add_row(
        {"cache hit rate", common::Table::num(s.cache_hit_rate() * 100.0, 1)});
  }
  t.add_row({"mean batch occupancy", common::Table::num(s.mean_batch_occupancy, 2)});
  t.add_row({"max batch occupancy", std::to_string(s.max_batch_occupancy)});
  t.add_row({"p50 latency (us)", common::Table::num(s.p50_us, 1)});
  t.add_row({"p95 latency (us)", common::Table::num(s.p95_us, 1)});
  t.add_row({"p99 latency (us)", common::Table::num(s.p99_us, 1)});
  t.add_row({"mean latency (us)", common::Table::num(s.mean_latency_us, 1)});
  if (elapsed_s > 0.0) {
    t.add_row({"throughput (req/s)",
               common::Table::num(s.throughput_rps(elapsed_s), 1)});
  }
  return t;
}

}  // namespace orco::serve
