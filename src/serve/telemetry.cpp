#include "serve/telemetry.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace orco::serve {

namespace {
// Quarter-powers of two up to ~2^36 us (~19 hours): 4 buckets per octave
// gives <=19% bucket width across the whole range.
constexpr std::size_t kBucketsPerOctave = 4;
constexpr std::size_t kBucketCount = 36 * kBucketsPerOctave;
}  // namespace

LatencyHistogram::LatencyHistogram() : buckets_(kBucketCount, 0) {}

std::size_t LatencyHistogram::bucket_for(double us) const {
  if (us <= 1.0) return 0;
  const double b = std::log2(us) * static_cast<double>(kBucketsPerOctave);
  return std::min(kBucketCount - 1, static_cast<std::size_t>(b));
}

void LatencyHistogram::record(double us) {
  us = std::max(0.0, us);
  buckets_[bucket_for(us)]++;
  ++count_;
  sum_us_ += us;
  max_us_ = std::max(max_us_, us);
}

double LatencyHistogram::mean_us() const {
  return count_ > 0 ? sum_us_ / static_cast<double>(count_) : 0.0;
}

double LatencyHistogram::quantile(double q) const {
  ORCO_CHECK(q >= 0.0 && q <= 1.0, "quantile wants q in [0,1], got " << q);
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += buckets_[b];
    if (static_cast<double>(seen) < target) continue;
    // Interpolate within [lo, hi) = the bucket's microsecond span.
    const double lo =
        b == 0 ? 0.0
               : std::exp2(static_cast<double>(b) / kBucketsPerOctave);
    const double hi = std::exp2(static_cast<double>(b + 1) / kBucketsPerOctave);
    const double frac =
        std::clamp((target - before) / static_cast<double>(buckets_[b]), 0.0, 1.0);
    return std::min(lo + frac * (hi - lo), max_us_);
  }
  return max_us_;
}

void Telemetry::record_submitted() {
  std::lock_guard lock(mu_);
  ++submitted_;
}

void Telemetry::record_shed() {
  std::lock_guard lock(mu_);
  ++shed_;
}

void Telemetry::record_rejected() {
  std::lock_guard lock(mu_);
  ++rejected_;
}

void Telemetry::record_batch(std::size_t occupancy) {
  std::lock_guard lock(mu_);
  ++batches_;
  batch_requests_ += occupancy;
  max_occupancy_ = std::max(max_occupancy_, occupancy);
}

void Telemetry::record_completed(double latency_us) {
  std::lock_guard lock(mu_);
  latency_.record(latency_us);
}

Telemetry::TenantStats& Telemetry::tenant_stats(ClusterId cluster) {
  return tenants_[cluster];
}

void Telemetry::record_submitted(ClusterId cluster) {
  std::lock_guard lock(mu_);
  ++submitted_;
  ++tenant_stats(cluster).submitted;
}

void Telemetry::record_shed(ClusterId cluster) {
  std::lock_guard lock(mu_);
  ++shed_;
  ++tenant_stats(cluster).shed;
}

void Telemetry::record_rejected(ClusterId cluster) {
  std::lock_guard lock(mu_);
  ++rejected_;
  ++tenant_stats(cluster).rejected;
}

void Telemetry::record_completed(ClusterId cluster, double latency_us) {
  std::lock_guard lock(mu_);
  latency_.record(latency_us);
  tenant_stats(cluster).latency.record(latency_us);
}

void Telemetry::record_cache_hit(ClusterId cluster) {
  std::lock_guard lock(mu_);
  ++cache_hits_;
  ++tenant_stats(cluster).cache_hits;
}

void Telemetry::record_cache_miss(ClusterId cluster) {
  std::lock_guard lock(mu_);
  ++cache_misses_;
  ++tenant_stats(cluster).cache_misses;
}

void Telemetry::record_model_version(ClusterId cluster, std::uint64_t version,
                                     double staleness_us) {
  std::lock_guard lock(mu_);
  TenantStats& stats = tenant_stats(cluster);
  if (stats.model_version != 0 && stats.model_version != version) {
    ++stats.model_swaps;
  }
  stats.model_version = version;
  stats.model_staleness_us = staleness_us;
}

TenantSnapshot Telemetry::snapshot_of(const TenantStats& stats) {
  TenantSnapshot s;
  s.submitted = stats.submitted;
  s.completed = stats.latency.count();
  s.shed = stats.shed;
  s.rejected = stats.rejected;
  s.cache_hits = stats.cache_hits;
  s.cache_misses = stats.cache_misses;
  s.model_version = stats.model_version;
  s.model_swaps = stats.model_swaps;
  s.model_staleness_us = stats.model_staleness_us;
  s.p50_us = stats.latency.quantile(0.50);
  s.p99_us = stats.latency.quantile(0.99);
  s.mean_latency_us = stats.latency.mean_us();
  s.max_latency_us = stats.latency.max_us();
  return s;
}

TenantSnapshot Telemetry::tenant_snapshot(ClusterId cluster) const {
  std::lock_guard lock(mu_);
  const auto it = tenants_.find(cluster);
  return it == tenants_.end() ? TenantSnapshot{} : snapshot_of(it->second);
}

std::map<ClusterId, TenantSnapshot> Telemetry::tenant_snapshots() const {
  std::lock_guard lock(mu_);
  std::map<ClusterId, TenantSnapshot> out;
  for (const auto& [cluster, stats] : tenants_) {
    out.emplace(cluster, snapshot_of(stats));
  }
  return out;
}

common::Table Telemetry::tenant_report() const {
  const auto snapshots = tenant_snapshots();
  common::Table t({"cluster", "submitted", "completed", "shed", "rejected",
                   "p50 us", "p99 us", "cache hit%", "model ver", "swaps",
                   "staleness ms"});
  for (const auto& [cluster, s] : snapshots) {
    const std::uint64_t looked_up = s.cache_hits + s.cache_misses;
    const double hit_pct =
        looked_up > 0 ? 100.0 * static_cast<double>(s.cache_hits) /
                            static_cast<double>(looked_up)
                      : 0.0;
    t.add_row({std::to_string(cluster), std::to_string(s.submitted),
               std::to_string(s.completed), std::to_string(s.shed),
               std::to_string(s.rejected), common::Table::num(s.p50_us, 1),
               common::Table::num(s.p99_us, 1), common::Table::num(hit_pct, 1),
               std::to_string(s.model_version), std::to_string(s.model_swaps),
               common::Table::num(s.model_staleness_us / 1000.0, 1)});
  }
  return t;
}

TelemetrySnapshot Telemetry::snapshot() const {
  std::lock_guard lock(mu_);
  TelemetrySnapshot s;
  s.submitted = submitted_;
  s.completed = latency_.count();
  s.shed = shed_;
  s.rejected = rejected_;
  s.batches = batches_;
  s.cache_hits = cache_hits_;
  s.cache_misses = cache_misses_;
  s.mean_batch_occupancy =
      batches_ > 0 ? static_cast<double>(batch_requests_) /
                         static_cast<double>(batches_)
                   : 0.0;
  s.max_batch_occupancy = max_occupancy_;
  s.p50_us = latency_.quantile(0.50);
  s.p95_us = latency_.quantile(0.95);
  s.p99_us = latency_.quantile(0.99);
  s.mean_latency_us = latency_.mean_us();
  s.max_latency_us = latency_.max_us();
  return s;
}

common::Table Telemetry::report(double elapsed_s) const {
  const TelemetrySnapshot s = snapshot();
  common::Table t({"metric", "value"});
  t.add_row({"submitted", std::to_string(s.submitted)});
  t.add_row({"completed", std::to_string(s.completed)});
  t.add_row({"shed", std::to_string(s.shed)});
  t.add_row({"rejected", std::to_string(s.rejected)});
  t.add_row({"batches", std::to_string(s.batches)});
  if (s.cache_hits + s.cache_misses > 0) {
    t.add_row({"cache hits", std::to_string(s.cache_hits)});
    t.add_row(
        {"cache hit rate", common::Table::num(s.cache_hit_rate() * 100.0, 1)});
  }
  t.add_row({"mean batch occupancy", common::Table::num(s.mean_batch_occupancy, 2)});
  t.add_row({"max batch occupancy", std::to_string(s.max_batch_occupancy)});
  t.add_row({"p50 latency (us)", common::Table::num(s.p50_us, 1)});
  t.add_row({"p95 latency (us)", common::Table::num(s.p95_us, 1)});
  t.add_row({"p99 latency (us)", common::Table::num(s.p99_us, 1)});
  t.add_row({"mean latency (us)", common::Table::num(s.mean_latency_us, 1)});
  if (elapsed_s > 0.0) {
    t.add_row({"throughput (req/s)",
               common::Table::num(s.throughput_rps(elapsed_s), 1)});
  }
  return t;
}

}  // namespace orco::serve
