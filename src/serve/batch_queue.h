// BatchQueue — a bounded MPMC queue that coalesces same-cluster decode
// requests into batches.
//
// Producers push from any thread; push never blocks — when the queue is at
// capacity the request is shed (backpressure is explicit, callers answer
// the request with kShed). A consumer pops a *batch*: all requests in it
// belong to one cluster (hence one decoder model), so the shard can decode
// them with a single batched GEMM. pop_batch waits up to max_wait for
// stragglers of the same cluster once the first request is in hand, trading
// a bounded latency hit for batch occupancy.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "serve/request.h"

namespace orco::serve {

struct BatchQueueConfig {
  std::size_t capacity = 1024;   // pending requests before shedding
  std::size_t max_batch = 32;    // coalescing ceiling per pop
  std::uint64_t max_wait_us = 200;  // coalescing window after first request
};

enum class PushResult { kAccepted, kShed, kClosed };

class BatchQueue {
 public:
  explicit BatchQueue(const BatchQueueConfig& config);

  /// Thread-safe, non-blocking. kShed when full, kClosed after close().
  PushResult push(PendingRequest&& pending);

  /// Blocks until at least one request is available (or the queue is closed
  /// and drained — then returns empty). Returns up to max_batch requests,
  /// all for the same cluster, preserving per-cluster FIFO order. Other
  /// clusters' requests keep their positions.
  std::vector<PendingRequest> pop_batch();

  /// Stops intake and wakes consumers; queued requests remain poppable so a
  /// graceful shutdown can drain in-flight work.
  void close();

  bool closed() const;
  std::size_t size() const;
  std::size_t capacity() const noexcept { return config_.capacity; }
  const BatchQueueConfig& config() const noexcept { return config_; }

 private:
  /// Moves up to `limit` requests for `cluster` out of pending_ into out.
  /// Caller holds mu_.
  void extract_cluster(ClusterId cluster, std::size_t limit,
                       std::vector<PendingRequest>& out);

  BatchQueueConfig config_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<PendingRequest> pending_;
  bool closed_ = false;
};

}  // namespace orco::serve
