// BatchQueue — a bounded MPMC queue that coalesces same-cluster decode
// requests into batches, with per-tenant QoS.
//
// Producers push from any thread; push never blocks — admission is governed
// by each tenant's TenantPolicy: a tenant over its queue quota is shed, and
// when the whole queue is at capacity an arriving request evicts the newest
// pending request of a strictly lower-priority tenant (handed back to the
// caller to answer kShed) before being shed itself. A consumer pops a
// *batch*: all requests in it belong to one cluster (hence one decoder
// model), so the shard can decode them with a single batched GEMM. The
// cluster is chosen by weighted priority with an aging term — high-priority
// tenants go first, but a waiting head request's score grows with its age so
// low-priority tenants cannot starve. pop_batch waits up to max_wait for
// stragglers of the same cluster once the first request is in hand, trading
// a bounded latency hit for batch occupancy.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "serve/request.h"
#include "serve/tenant_policy.h"

namespace orco::serve {

struct BatchQueueConfig {
  std::size_t capacity = 1024;   // pending requests before shedding
  std::size_t max_batch = 32;    // coalescing ceiling per pop
  std::uint64_t max_wait_us = 200;  // coalescing window after first request
  /// Microseconds of head-of-line wait that double a cluster's scheduling
  /// score. Smaller values age faster (fairer, less strict priority);
  /// 0 disables aging (pure weighted priority + FIFO tie-break).
  std::uint64_t aging_us = 1000;
  /// Policy applied to clusters that were never given one via set_policy.
  TenantPolicy default_policy;
};

enum class PushResult { kAccepted, kShed, kClosed };

class BatchQueue {
 public:
  explicit BatchQueue(const BatchQueueConfig& config);

  /// Thread-safe, non-blocking. kShed when the tenant is over quota or the
  /// queue is full of same-or-higher-priority work; kClosed after close().
  /// When admission at capacity evicts a lower-priority pending request, it
  /// is appended to `evicted` for the caller to answer kShed (and count in
  /// telemetry); with a null `evicted` the queue answers the promise itself.
  PushResult push(PendingRequest&& pending,
                  std::vector<PendingRequest>* evicted = nullptr);

  /// Blocks until at least one request is available (or the queue is closed
  /// and drained — then returns empty). Returns up to max_batch requests,
  /// all for the same cluster, preserving per-cluster FIFO order. Other
  /// clusters' requests keep their positions. The cluster is picked by
  /// schedule_weight() x an aging factor of its head request's wait.
  std::vector<PendingRequest> pop_batch();

  /// Stops intake and wakes consumers; queued requests remain poppable so a
  /// graceful shutdown can drain in-flight work.
  void close();

  /// Installs (or replaces) a tenant's QoS policy. Applies to requests
  /// already queued for that cluster as well.
  void set_policy(ClusterId cluster, const TenantPolicy& policy);
  TenantPolicy policy(ClusterId cluster) const;

  /// Drops an *empty* tenant lane (policy + deque), reclaiming its slot —
  /// without this, 100k cold-tier demote/wake cycles would leave 100k dead
  /// lanes that every pop_batch scan walks. Returns false (and changes
  /// nothing) when the lane still holds queued requests or never existed.
  bool erase_lane(ClusterId cluster);

  bool closed() const;
  std::size_t size() const;
  std::size_t size(ClusterId cluster) const;
  std::size_t capacity() const noexcept { return config_.capacity; }
  const BatchQueueConfig& config() const noexcept { return config_; }

 private:
  struct Entry {
    PendingRequest pending;
    std::uint64_t seq = 0;  // global arrival order, for FIFO tie-breaks
    std::chrono::steady_clock::time_point queued_at;
  };
  /// One tenant's FIFO lane plus its policy. Lanes are created on first
  /// push or set_policy and live until erase_lane (the fleet's demotion
  /// path) reclaims them once drained.
  struct Lane {
    TenantPolicy policy;
    std::deque<Entry> entries;
  };

  /// Creates the lane with the default policy if new.
  Lane& lane_for(ClusterId cluster) ORCO_REQUIRES(mu_);
  /// Picks the non-empty lane with the highest aged score. At least one
  /// lane must be non-empty.
  ClusterId pick_cluster() const ORCO_REQUIRES(mu_);
  /// Moves up to `limit` requests for `cluster` out of its lane into out.
  void extract_cluster(ClusterId cluster, std::size_t limit,
                       std::vector<PendingRequest>& out) ORCO_REQUIRES(mu_);

  BatchQueueConfig config_;
  mutable common::Mutex mu_;
  std::condition_variable cv_;
  std::map<ClusterId, Lane> lanes_ ORCO_GUARDED_BY(mu_);
  std::size_t total_ ORCO_GUARDED_BY(mu_) = 0;
  std::uint64_t next_seq_ ORCO_GUARDED_BY(mu_) = 0;
  bool closed_ ORCO_GUARDED_BY(mu_) = false;
};

}  // namespace orco::serve
