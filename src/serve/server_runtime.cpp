#include "serve/server_runtime.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "obs/trace.h"

namespace orco::serve {

ServerRuntime::ServerRuntime(const ServeConfig& config)
    : config_(config),
      telemetry_(config.per_tenant_telemetry),
      pool_(std::max<std::size_t>(1, config.shard_count)) {
  ORCO_CHECK(config.shard_count > 0, "ServerRuntime needs at least one shard");
  const tensor::Backend* backend = tensor::resolve_backend(config.backend);
  shards_.reserve(config.shard_count);
  for (std::size_t i = 0; i < config.shard_count; ++i) {
    shards_.push_back(std::make_unique<ClusterShard>(
        i, config.queue, &telemetry_, backend, config.model_registry,
        config.recon_cache, config.int8_decode));
  }
}

ServerRuntime::~ServerRuntime() { shutdown(); }

void ServerRuntime::register_cluster(
    ClusterId cluster, std::shared_ptr<core::OrcoDcsSystem> system) {
  register_cluster(cluster, std::move(system),
                   config_.queue.default_policy);
}

void ServerRuntime::register_cluster(
    ClusterId cluster, std::shared_ptr<core::OrcoDcsSystem> system,
    const TenantPolicy& policy) {
  shards_[shard_of(cluster)]->add_cluster(cluster, std::move(system), policy);
}

bool ServerRuntime::unregister_cluster(ClusterId cluster) {
  ClusterShard& shard = *shards_[shard_of(cluster)];
  const bool removed = shard.remove_cluster(cluster);
  // Reclaim the tenant's queue lane; a non-empty lane (caller didn't drain)
  // stays — its requests are answered kUnknownCluster at pop, after which
  // the lane is a candidate for the next unregister's erase.
  if (removed) shard.queue().erase_lane(cluster);
  return removed;
}

std::future<DecodeResponse> ServerRuntime::immediate_response(
    RequestId id, ResponseStatus status) {
  std::promise<DecodeResponse> promise;
  std::future<DecodeResponse> future = promise.get_future();
  DecodeResponse response;
  response.id = id;
  response.status = status;
  promise.set_value(std::move(response));
  return future;
}

std::future<DecodeResponse> ServerRuntime::submit(ClusterId cluster,
                                                  Tensor latent) {
  DecodeRequest request;
  request.cluster = cluster;
  request.latent = std::move(latent);
  return submit_request(std::move(request));
}

std::future<DecodeResponse> ServerRuntime::submit(
    ClusterId cluster, std::vector<std::uint8_t> payload,
    core::LatentPrecision precision) {
  DecodeRequest request;
  request.cluster = cluster;
  request.payload = std::move(payload);
  request.precision = precision;
  request.quantized = true;
  return submit_request(std::move(request));
}

std::future<DecodeResponse> ServerRuntime::submit_request(
    DecodeRequest request) {
  const ClusterId cluster = request.cluster;
  const RequestId id = next_request_id_.fetch_add(1);
  if (!accepting_.load()) {
    telemetry_.record_submitted();
    telemetry_.record_rejected();
    return immediate_response(id, ResponseStatus::kShutdown);
  }
  ClusterShard& shard = *shards_[shard_of(cluster)];
  if (!shard.has_cluster(cluster)) {
    // Answer unregistered ids up front: they must not allocate queue lanes
    // or per-tenant telemetry rows (both live for the runtime's lifetime),
    // and must not carry the default policy's power to evict registered
    // low-priority tenants' queued work. Counted in the global counters
    // only, so arbitrary bogus ids cannot grow memory.
    telemetry_.record_submitted();
    telemetry_.record_rejected();
    return immediate_response(id, ResponseStatus::kUnknownCluster);
  }
  telemetry_.record_submitted(cluster);

  PendingRequest pending;
  pending.request = std::move(request);
  pending.request.id = id;
  pending.request.enqueued_at = std::chrono::steady_clock::now();
  // Per-request sampling decision, made once here so the whole span tree
  // (queue wait through respond, recorded on the shard worker) is coherent.
  pending.request.traced = obs::TraceCollector::instance().should_sample();
  std::future<DecodeResponse> future = pending.promise.get_future();

  std::vector<PendingRequest> evicted;
  const PushResult result = shard.queue().push(std::move(pending), &evicted);
  // Queue-full admission may bump lower-priority pending work to make room;
  // answer each bumped request kShed before returning so its caller's
  // future resolves as promptly as a directly-shed one.
  for (auto& bumped : evicted) {
    telemetry_.record_shed(bumped.request.cluster);
    resolve_with_status(bumped, ResponseStatus::kShed);
  }
  switch (result) {
    case PushResult::kAccepted:
      return future;
    case PushResult::kShed: {
      telemetry_.record_shed(cluster);
      return immediate_response(id, ResponseStatus::kShed);
    }
    case PushResult::kClosed:
      telemetry_.record_rejected(cluster);
      return immediate_response(id, ResponseStatus::kShutdown);
  }
  return future;  // unreachable
}

bool ServerRuntime::export_observability() const {
  return obs::export_all(telemetry_.registry(), config_.obs_export);
}

void ServerRuntime::start_flusher() {
  if (!config_.obs_export.any() || config_.obs_export.flush_period_s <= 0.0) {
    return;
  }
  flusher_ = std::thread([this] {
    const auto period = std::chrono::duration<double>(
        config_.obs_export.flush_period_s);
    common::MutexLock lock(flush_mu_);
    while (!flush_stop_) {
      // Deadline-based so spurious wakeups don't stretch the period.
      const auto deadline = std::chrono::steady_clock::now() + period;
      while (!flush_stop_ && flush_cv_.wait_until(lock.native(), deadline) !=
                                 std::cv_status::timeout) {
      }
      if (flush_stop_) return;  // final export happens on the shutdown path
      export_observability();
    }
  });
}

void ServerRuntime::stop_flusher() {
  {
    common::MutexLock lock(flush_mu_);
    flush_stop_ = true;
  }
  flush_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

void ServerRuntime::start() {
  ORCO_CHECK(!stopped_.load(), "cannot restart a shut-down ServerRuntime");
  if (running_.exchange(true)) return;
  workers_.reserve(shards_.size());
  for (auto& shard : shards_) {
    ClusterShard* s = shard.get();
    workers_.push_back(pool_.submit([s] { s->run(); }));
  }
  start_flusher();
}

void ServerRuntime::shutdown() {
  if (stopped_.exchange(true)) return;
  accepting_.store(false);
  for (auto& shard : shards_) shard->queue().close();
  if (running_.load()) {
    // Join every worker even if one died; shutdown() must not throw (it
    // runs from the destructor).
    for (auto& worker : workers_) {
      try {
        worker.get();
      } catch (const std::exception& e) {
        ORCO_LOG_ERROR("serve shard worker died: " << e.what());
      }
    }
    workers_.clear();
    running_.store(false);
  } else {
    // Never started: drain queues inline so every accepted future resolves.
    for (auto& shard : shards_) shard->run();
  }
  stop_flusher();
  // The authoritative dump: the workers' futures have resolved, so their
  // trace rings are quiescent and the counters are final.
  if (config_.obs_export.any()) export_observability();
}

}  // namespace orco::serve
