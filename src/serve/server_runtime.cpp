#include "serve/server_runtime.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.h"
#include "common/logging.h"

namespace orco::serve {

ServerRuntime::ServerRuntime(const ServeConfig& config)
    : config_(config), pool_(std::max<std::size_t>(1, config.shard_count)) {
  ORCO_CHECK(config.shard_count > 0, "ServerRuntime needs at least one shard");
  const tensor::Backend* backend = tensor::resolve_backend(config.backend);
  shards_.reserve(config.shard_count);
  for (std::size_t i = 0; i < config.shard_count; ++i) {
    shards_.push_back(
        std::make_unique<ClusterShard>(i, config.queue, &telemetry_, backend));
  }
}

ServerRuntime::~ServerRuntime() { shutdown(); }

void ServerRuntime::register_cluster(
    ClusterId cluster, std::shared_ptr<core::OrcoDcsSystem> system) {
  shards_[shard_of(cluster)]->add_cluster(cluster, std::move(system));
}

std::future<DecodeResponse> ServerRuntime::immediate_response(
    RequestId id, ResponseStatus status) {
  std::promise<DecodeResponse> promise;
  std::future<DecodeResponse> future = promise.get_future();
  DecodeResponse response;
  response.id = id;
  response.status = status;
  promise.set_value(std::move(response));
  return future;
}

std::future<DecodeResponse> ServerRuntime::submit(ClusterId cluster,
                                                  Tensor latent) {
  const RequestId id = next_request_id_.fetch_add(1);
  telemetry_.record_submitted();
  if (!accepting_.load()) {
    telemetry_.record_rejected();
    return immediate_response(id, ResponseStatus::kShutdown);
  }

  PendingRequest pending;
  pending.request.cluster = cluster;
  pending.request.id = id;
  pending.request.latent = std::move(latent);
  pending.request.enqueued_at = std::chrono::steady_clock::now();
  std::future<DecodeResponse> future = pending.promise.get_future();

  switch (shards_[shard_of(cluster)]->queue().push(std::move(pending))) {
    case PushResult::kAccepted:
      return future;
    case PushResult::kShed: {
      telemetry_.record_shed();
      return immediate_response(id, ResponseStatus::kShed);
    }
    case PushResult::kClosed:
      telemetry_.record_rejected();
      return immediate_response(id, ResponseStatus::kShutdown);
  }
  return future;  // unreachable
}

void ServerRuntime::start() {
  ORCO_CHECK(!stopped_.load(), "cannot restart a shut-down ServerRuntime");
  if (running_.exchange(true)) return;
  workers_.reserve(shards_.size());
  for (auto& shard : shards_) {
    ClusterShard* s = shard.get();
    workers_.push_back(pool_.submit([s] { s->run(); }));
  }
}

void ServerRuntime::shutdown() {
  if (stopped_.exchange(true)) return;
  accepting_.store(false);
  for (auto& shard : shards_) shard->queue().close();
  if (running_.load()) {
    // Join every worker even if one died; shutdown() must not throw (it
    // runs from the destructor).
    for (auto& worker : workers_) {
      try {
        worker.get();
      } catch (const std::exception& e) {
        ORCO_LOG_ERROR("serve shard worker died: " << e.what());
      }
    }
    workers_.clear();
    running_.store(false);
  } else {
    // Never started: drain queues inline so every accepted future resolves.
    for (auto& shard : shards_) shard->run();
  }
}

}  // namespace orco::serve
