#include "serve/batch_queue.h"

#include "common/check.h"

namespace orco::serve {

BatchQueue::BatchQueue(const BatchQueueConfig& config) : config_(config) {
  ORCO_CHECK(config.capacity > 0, "BatchQueue capacity must be positive");
  ORCO_CHECK(config.max_batch > 0, "BatchQueue max_batch must be positive");
}

PushResult BatchQueue::push(PendingRequest&& pending) {
  {
    std::lock_guard lock(mu_);
    if (closed_) return PushResult::kClosed;
    if (pending_.size() >= config_.capacity) return PushResult::kShed;
    pending_.push_back(std::move(pending));
  }
  cv_.notify_one();
  return PushResult::kAccepted;
}

void BatchQueue::extract_cluster(ClusterId cluster, std::size_t limit,
                                 std::vector<PendingRequest>& out) {
  for (auto it = pending_.begin();
       it != pending_.end() && out.size() < limit;) {
    if (it->request.cluster == cluster) {
      out.push_back(std::move(*it));
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<PendingRequest> BatchQueue::pop_batch() {
  std::vector<PendingRequest> batch;
  std::unique_lock lock(mu_);
  cv_.wait(lock, [this] { return closed_ || !pending_.empty(); });
  if (pending_.empty()) return batch;  // closed and drained

  const ClusterId target = pending_.front().request.cluster;
  extract_cluster(target, config_.max_batch, batch);

  // Coalescing window: once we own the batch's first request, linger up to
  // max_wait_us for more of the same cluster. Closed queues skip the wait
  // so shutdown drains promptly.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(config_.max_wait_us);
  while (batch.size() < config_.max_batch && !closed_ &&
         config_.max_wait_us > 0) {
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      extract_cluster(target, config_.max_batch, batch);
      break;
    }
    extract_cluster(target, config_.max_batch, batch);
  }
  return batch;
}

void BatchQueue::close() {
  {
    std::lock_guard lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool BatchQueue::closed() const {
  std::lock_guard lock(mu_);
  return closed_;
}

std::size_t BatchQueue::size() const {
  std::lock_guard lock(mu_);
  return pending_.size();
}

}  // namespace orco::serve
