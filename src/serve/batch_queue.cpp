#include "serve/batch_queue.h"

#include <limits>

#include "common/check.h"

namespace orco::serve {

BatchQueue::BatchQueue(const BatchQueueConfig& config) : config_(config) {
  ORCO_CHECK(config.capacity > 0, "BatchQueue capacity must be positive");
  ORCO_CHECK(config.max_batch > 0, "BatchQueue max_batch must be positive");
}

BatchQueue::Lane& BatchQueue::lane_for(ClusterId cluster) {
  const auto it = lanes_.find(cluster);
  if (it != lanes_.end()) return it->second;
  Lane& lane = lanes_[cluster];
  lane.policy = config_.default_policy;
  return lane;
}

void BatchQueue::set_policy(ClusterId cluster, const TenantPolicy& policy) {
  common::MutexLock lock(mu_);
  lane_for(cluster).policy = policy;
}

TenantPolicy BatchQueue::policy(ClusterId cluster) const {
  common::MutexLock lock(mu_);
  const auto it = lanes_.find(cluster);
  return it == lanes_.end() ? config_.default_policy : it->second.policy;
}

bool BatchQueue::erase_lane(ClusterId cluster) {
  common::MutexLock lock(mu_);
  const auto it = lanes_.find(cluster);
  if (it == lanes_.end() || !it->second.entries.empty()) return false;
  lanes_.erase(it);
  return true;
}

PushResult BatchQueue::push(PendingRequest&& pending,
                            std::vector<PendingRequest>* evicted) {
  PendingRequest self_answered_eviction;
  bool have_self_answered = false;
  {
    common::MutexLock lock(mu_);
    if (closed_) return PushResult::kClosed;
    Lane& lane = lane_for(pending.request.cluster);
    const std::size_t quota = lane.policy.queue_quota;
    if (quota > 0 && lane.entries.size() >= quota) return PushResult::kShed;
    if (total_ >= config_.capacity) {
      // At capacity: shed low-priority work first. Find the lowest-priority
      // lane strictly below the arriving request's class (largest backlog
      // breaks ties) and evict its newest entry; the oldest requests keep
      // their positions so eviction never reorders surviving work.
      Lane* victim = nullptr;
      for (auto& [id, candidate] : lanes_) {
        if (candidate.entries.empty()) continue;
        if (candidate.policy.priority <= lane.policy.priority) continue;
        if (victim == nullptr ||
            candidate.policy.priority > victim->policy.priority ||
            (candidate.policy.priority == victim->policy.priority &&
             candidate.entries.size() > victim->entries.size())) {
          victim = &candidate;
        }
      }
      if (victim == nullptr) return PushResult::kShed;
      Entry dropped = std::move(victim->entries.back());
      victim->entries.pop_back();
      --total_;
      if (evicted != nullptr) {
        evicted->push_back(std::move(dropped.pending));
      } else {
        self_answered_eviction = std::move(dropped.pending);
        have_self_answered = true;  // answer outside the lock
      }
    }
    Entry entry;
    entry.pending = std::move(pending);
    entry.seq = next_seq_++;
    entry.queued_at = std::chrono::steady_clock::now();
    lane.entries.push_back(std::move(entry));
    ++total_;
  }
  // notify_all, not notify_one: with multiple consumers, one of them may be
  // lingering in a coalescing window for a *different* cluster and would
  // absorb a single notification without extracting this request, leaving a
  // top-level waiter asleep and the request stalled (the MPMC lost-wakeup).
  // Waking every waiter guarantees an eligible consumer sees it.
  cv_.notify_all();
  // Safety net for direct queue users that passed no out-vector (the
  // runtime always does): answer the evicted promise here.
  if (have_self_answered) {
    resolve_with_status(self_answered_eviction, ResponseStatus::kShed);
  }
  return PushResult::kAccepted;
}

ClusterId BatchQueue::pick_cluster() const {
  const auto now = std::chrono::steady_clock::now();
  ClusterId best = 0;
  double best_score = -1.0;
  std::uint64_t best_seq = std::numeric_limits<std::uint64_t>::max();
  for (const auto& [cluster, lane] : lanes_) {
    if (lane.entries.empty()) continue;
    const Entry& head = lane.entries.front();
    double aging = 1.0;
    if (config_.aging_us > 0) {
      const double age_us =
          std::chrono::duration<double, std::micro>(now - head.queued_at)
              .count();
      aging += age_us / static_cast<double>(config_.aging_us);
    }
    const double score = lane.policy.schedule_weight() * aging;
    if (score > best_score ||
        (score == best_score && head.seq < best_seq)) {
      best = cluster;
      best_score = score;
      best_seq = head.seq;
    }
  }
  ORCO_CHECK(best_score >= 0.0, "pick_cluster on an empty queue");
  return best;
}

void BatchQueue::extract_cluster(ClusterId cluster, std::size_t limit,
                                 std::vector<PendingRequest>& out) {
  const auto it = lanes_.find(cluster);
  if (it == lanes_.end()) return;
  std::deque<Entry>& entries = it->second.entries;
  if (entries.empty()) return;
  const auto popped_at = std::chrono::steady_clock::now();
  while (!entries.empty() && out.size() < limit) {
    out.push_back(std::move(entries.front().pending));
    out.back().popped_at = popped_at;
    entries.pop_front();
    --total_;
  }
}

std::vector<PendingRequest> BatchQueue::pop_batch() {
  std::vector<PendingRequest> batch;
  common::MutexLock lock(mu_);
  while (!closed_ && total_ == 0) cv_.wait(lock.native());
  if (total_ == 0) return batch;  // closed and drained

  const ClusterId target = pick_cluster();
  extract_cluster(target, config_.max_batch, batch);

  // Coalescing window: once we own the batch's first request, linger up to
  // max_wait_us for more of the same cluster. Closed queues skip the wait
  // so shutdown drains promptly.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(config_.max_wait_us);
  while (batch.size() < config_.max_batch && !closed_ &&
         config_.max_wait_us > 0) {
    if (cv_.wait_until(lock.native(), deadline) == std::cv_status::timeout) {
      extract_cluster(target, config_.max_batch, batch);
      break;
    }
    extract_cluster(target, config_.max_batch, batch);
  }
  return batch;
}

void BatchQueue::close() {
  {
    common::MutexLock lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool BatchQueue::closed() const {
  common::MutexLock lock(mu_);
  return closed_;
}

std::size_t BatchQueue::size() const {
  common::MutexLock lock(mu_);
  return total_;
}

std::size_t BatchQueue::size(ClusterId cluster) const {
  common::MutexLock lock(mu_);
  const auto it = lanes_.find(cluster);
  return it == lanes_.end() ? 0 : it->second.entries.size();
}

}  // namespace orco::serve
