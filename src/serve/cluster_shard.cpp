#include "serve/cluster_shard.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/check.h"
#include "core/quantization.h"
#include "common/logging.h"
#include "obs/config.h"
#include "obs/trace.h"

namespace orco::serve {

namespace {

double elapsed_us(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - since)
      .count();
}

double between_us(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

void respond_error(PendingRequest& pending, ResponseStatus status,
                   std::string detail = {}) {
  DecodeResponse response;
  response.id = pending.request.id;
  response.status = status;
  response.detail = std::move(detail);
  response.latency_us = elapsed_us(pending.request.enqueued_at);
  pending.promise.set_value(std::move(response));
  pending.answered = true;
}

/// Scope guard over a batch: whatever unwinds out of serve_batch — an
/// allocation failure, a poisoned promise mid-fan-out — every request still
/// unanswered when the guard runs is answered kInternalError, so callers
/// never see a std::future_error broken_promise from the shard dropping a
/// batch.
class AnswerAllGuard {
 public:
  AnswerAllGuard(std::vector<PendingRequest>& batch, Telemetry& telemetry,
                 ClusterId cluster)
      : batch_(batch), telemetry_(telemetry), cluster_(cluster) {}

  ~AnswerAllGuard() {
    for (auto& pending : batch_) {
      if (pending.answered) continue;
      try {
        respond_error(pending, ResponseStatus::kInternalError,
                      "serve_batch aborted");
        // Counted only after the answer lands: a promise consumed without
        // the flag being set (the set_value that threw mid-fan-out) was
        // already counted on its original path and must not be counted
        // twice.
        telemetry_.record_rejected(cluster_);
      } catch (const std::future_error&) {
        // Nothing left to answer.
      }
    }
  }

 private:
  std::vector<PendingRequest>& batch_;
  Telemetry& telemetry_;
  ClusterId cluster_;
};

}  // namespace

ClusterShard::ClusterShard(std::size_t index,
                           const BatchQueueConfig& queue_config,
                           Telemetry* telemetry,
                           const tensor::Backend* backend,
                           std::shared_ptr<train::ModelRegistry> registry,
                           const ReconstructionCacheConfig& cache_config,
                           bool int8_decode)
    : index_(index),
      queue_(queue_config),
      telemetry_(telemetry),
      backend_(backend),
      registry_(std::move(registry)),
      cache_(cache_config),
      int8_decode_(int8_decode) {
  ORCO_CHECK(telemetry != nullptr, "ClusterShard needs a telemetry registry");
}

void ClusterShard::add_cluster(ClusterId cluster,
                               std::shared_ptr<core::OrcoDcsSystem> system) {
  add_cluster(cluster, std::move(system), queue_.config().default_policy);
}

void ClusterShard::add_cluster(ClusterId cluster,
                               std::shared_ptr<core::OrcoDcsSystem> system,
                               const TenantPolicy& policy) {
  ORCO_CHECK(system != nullptr, "cannot register a null tenant system");
  auto entry = std::make_shared<TenantEntry>();
  entry->system = std::move(system);
  // The swap slot is grabbed once here; the serve path then pays exactly
  // one atomic snapshot load per batch, never a registry map lookup.
  if (registry_ != nullptr) entry->model = registry_->entry(cluster);
  common::MutexLock lock(tenants_mu_);
  ORCO_CHECK(tenants_.emplace(cluster, std::move(entry)).second,
             "cluster " << cluster << " already registered on shard "
                        << index_);
  queue_.set_policy(cluster, policy);
}

bool ClusterShard::remove_cluster(ClusterId cluster) {
  common::MutexLock lock(tenants_mu_);
  // A worker mid-batch still holds its shared_ptr; erasing here only stops
  // future lookups. The entry (and the tenant system it pins) is destroyed
  // when the last holder lets go.
  return tenants_.erase(cluster) > 0;
}

bool ClusterShard::has_cluster(ClusterId cluster) const {
  common::MutexLock lock(tenants_mu_);
  return tenants_.count(cluster) > 0;
}

std::size_t ClusterShard::cluster_count() const {
  common::MutexLock lock(tenants_mu_);
  return tenants_.size();
}

std::shared_ptr<ClusterShard::TenantEntry> ClusterShard::find_cluster(
    ClusterId cluster) {
  common::MutexLock lock(tenants_mu_);
  const auto it = tenants_.find(cluster);
  return it == tenants_.end() ? nullptr : it->second;
}

void ClusterShard::run() {
  for (;;) {
    std::vector<PendingRequest> batch = queue_.pop_batch();
    if (batch.empty()) return;  // closed and drained
    try {
      serve_batch(std::move(batch));
    } catch (const std::exception& e) {
      // serve_batch's scope guard has already answered the affected batch
      // with kInternalError; anything escaping it (e.g. allocation failure)
      // must not kill the shard worker — it keeps serving.
      ORCO_LOG_ERROR("shard " << index_ << " dropped a batch: " << e.what());
    }
  }
}

void ClusterShard::serve_batch(std::vector<PendingRequest> batch) {
  if (batch.empty()) return;
  // Per-ServeConfig kernel backend for everything this batch computes; a
  // tenant with its own OrcoConfig::backend still overrides inside
  // decode_inference / via the snapshot's recorded backend (most specific
  // wins).
  tensor::BackendScope scope(backend_);
  const ClusterId cluster = batch.front().request.cluster;
  AnswerAllGuard guard(batch, *telemetry_, cluster);

  // Stage accounting + tracing. The sampling decision was made per request
  // at submit time; a batch is traced when any member is, so a traced
  // request always gets its full span tree. Queue wait (enqueue -> pop) is
  // recorded retroactively from the stamps the queue left on the requests.
  obs::TraceCollector& tc = obs::TraceCollector::instance();
  const bool traced =
      obs::trace_enabled() &&
      std::any_of(batch.begin(), batch.end(), [](const PendingRequest& p) {
        return p.request.traced;
      });
  double queue_wait_total_us = 0.0;
  for (const PendingRequest& pending : batch) {
    const double wait_us = std::max(
        0.0, between_us(pending.request.enqueued_at, pending.popped_at));
    queue_wait_total_us += wait_us;
    if (traced && pending.request.traced) {
      tc.emit({"queue_wait", "serve",
               tc.to_trace_us(pending.request.enqueued_at),
               static_cast<std::int64_t>(wait_us), pending.request.id,
               cluster, 0});
    }
  }
  telemetry_->record_stage(cluster, Telemetry::Stage::kQueueWait,
                           queue_wait_total_us, batch.size());
  const auto assembly_start = std::chrono::steady_clock::now();

  const std::shared_ptr<TenantEntry> tenant = find_cluster(cluster);
  if (tenant == nullptr) {
    for (auto& pending : batch) {
      // Telemetry strictly before the promise resolves: a caller who sees
      // the future ready must also see the counters updated.
      telemetry_->record_rejected(cluster);
      respond_error(pending, ResponseStatus::kUnknownCluster);
    }
    return;
  }

  // Pin one coherent model generation for the whole batch: the snapshot's
  // shared_ptr keeps it alive through the fan-out even if the trainer
  // publishes a newer one mid-flight; requests popped after this batch see
  // the swap. Without a registry entry (or before its first publish), fall
  // back to the tenant's live EdgeServer.
  const std::shared_ptr<const train::ModelSnapshot> snapshot =
      tenant->model != nullptr ? tenant->model->load() : nullptr;
  const std::uint64_t version =
      snapshot != nullptr ? snapshot->version
                          : tenant->system->edge().model_version();
  const std::size_t latent_dim =
      snapshot != nullptr ? snapshot->latent_dim
                          : tenant->system->config().orco.latent_dim;
  const double staleness_us =
      snapshot != nullptr ? snapshot->age_us(std::chrono::steady_clock::now())
                          : 0.0;
  telemetry_->record_model_version(cluster, version, staleness_us);
  // Swap-coherent cache invalidation: the version is part of every cache
  // key, so a stale hit is impossible by construction — invalidating at
  // the observed swap edge additionally returns the dead generation's LRU
  // capacity immediately.
  if (cache_.enabled() && tenant->last_version != 0 &&
      tenant->last_version != version) {
    cache_.invalidate(cluster);
  }
  tenant->last_version = version;

  // Validate shapes up front; only well-formed cache misses join the GEMM
  // batch. Requests stay in `batch` (the guard owns them); `good` holds
  // indices and `keys` the miss requests' cache keys (computed once here,
  // reused by the post-decode insert; nullopt = uncacheable latent).
  std::vector<std::size_t> good;
  good.reserve(batch.size());
  std::vector<std::optional<std::string>> keys;
  if (cache_.enabled()) keys.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const DecodeRequest& request = batch[i].request;
    const Tensor& latent = request.latent;
    const bool well_formed =
        request.quantized
            ? request.payload.size() ==
                  core::quantized_payload_bytes(latent_dim, request.precision)
            : (latent.rank() == 1 ||
               (latent.rank() == 2 && latent.dim(0) == 1)) &&
                  latent.numel() == latent_dim;
    if (!well_formed) {
      telemetry_->record_rejected(cluster);
      respond_error(batch[i], ResponseStatus::kBadRequest);
      continue;
    }
    if (cache_.enabled()) {
      // Quantized requests bypass the cache: its keys derive from float
      // latents (key_for re-quantizes onto its own snap grid), which the
      // wire payload never materializes on this path.
      std::optional<std::string> key;
      if (!request.quantized) key = cache_.key_for(cluster, version, latent);
      if (key.has_value()) {
        if (const Tensor* hit = cache_.lookup(*key)) {
          DecodeResponse response;
          response.id = batch[i].request.id;
          response.status = ResponseStatus::kOk;
          response.reconstruction = *hit;
          response.batch_size = 1;
          response.model_version = version;
          response.cache_hit = true;
          response.latency_us = elapsed_us(batch[i].request.enqueued_at);
          telemetry_->record_cache_hit(cluster);
          telemetry_->record_completed(cluster, response.latency_us);
          batch[i].promise.set_value(std::move(response));
          batch[i].answered = true;
          continue;
        }
        telemetry_->record_cache_miss(cluster);
      }
      keys.push_back(std::move(key));
    }
    good.push_back(i);
  }
  const auto record_assembly = [&](std::chrono::steady_clock::time_point
                                       end) {
    telemetry_->record_stage(cluster, Telemetry::Stage::kAssembly,
                             between_us(assembly_start, end), batch.size());
    if (traced) {
      tc.emit({"assembly", "serve", tc.to_trace_us(assembly_start),
               static_cast<std::int64_t>(between_us(assembly_start, end)), 0,
               cluster, batch.size()});
    }
  };
  if (good.empty()) {
    record_assembly(std::chrono::steady_clock::now());
    return;
  }

  // One batched decode for the whole coalesced batch: the decoder weights
  // stream through cache once instead of once per request. The coalesced
  // latents are written straight into the shard's reusable InferContext
  // input buffer (one sized row copy each — no stack_rows, no per-request
  // Tensor), and the decode lands in the worker-owned output buffer: after
  // warmup this whole block performs zero heap allocations.
  //
  // Int8 GEMM fast path: armed per runtime (ServeConfig::int8_decode) and
  // per tenant (OrcoConfig::int8_decode), taken only when the whole
  // coalesced batch is kFixed8 payloads — the codes feed the decoder GEMM
  // directly (dequantization fused into A-panel packing) and the float
  // batch is never materialized. A mixed or float batch falls back to
  // row-wise dequantization into the stacked float buffer.
  const std::size_t rows = good.size();
  const bool use_int8 =
      int8_decode_ && tenant->system->config().orco.int8_decode &&
      std::all_of(good.begin(), good.end(), [&](std::size_t i) {
        return batch[i].request.quantized &&
               batch[i].request.precision == core::LatentPrecision::kFixed8;
      });
  if (use_int8) {
    q_codes_.resize(rows * latent_dim);
    q_lo_.resize(rows);
    q_scale_.resize(rows);
    const std::size_t header =
        core::quantization_header_bytes(core::LatentPrecision::kFixed8);
    for (std::size_t row = 0; row < rows; ++row) {
      const auto& payload = batch[good[row]].request.payload;
      std::memcpy(q_codes_.data() + row * latent_dim,
                  payload.data() + header, latent_dim);
      core::quantized_dequant_params(payload.data(),
                                     core::LatentPrecision::kFixed8,
                                     &q_lo_[row], &q_scale_[row]);
    }
  } else {
    Tensor& stacked = infer_ctx_.input();
    stacked.resize(rows, latent_dim);
    for (std::size_t row = 0; row < rows; ++row) {
      const DecodeRequest& request = batch[good[row]].request;
      float* dst = stacked.data().data() + row * latent_dim;
      if (request.quantized) {
        core::dequantize_latents_into(request.payload.data(),
                                      request.payload.size(),
                                      request.precision, dst, latent_dim);
      } else {
        const auto src = request.latent.data();
        std::copy(src.begin(), src.end(), dst);
      }
    }
  }
  const auto decode_start = std::chrono::steady_clock::now();
  record_assembly(decode_start);
  try {
    // Snapshot batches execute the snapshot's compiled InferPlan (every
    // published snapshot carries one — fused ops, pre-packed panels, zero
    // per-batch planning); the registry-free path goes through EdgeServer,
    // which maintains its own plan.
    if (use_int8) {
      const tensor::QuantHeader qh{q_lo_.data(), q_scale_.data()};
      if (snapshot != nullptr) {
        tensor::BackendScope tenant_scope(snapshot->backend);
        snapshot->plan->run_quantized(q_codes_.data(), qh, rows, latent_dim,
                                      decode_out_, infer_ctx_);
      } else {
        tenant->system->edge().decode_inference_quantized(
            q_codes_.data(), qh, rows, decode_out_, infer_ctx_);
      }
    } else if (snapshot != nullptr) {
      tensor::BackendScope tenant_scope(snapshot->backend);
      snapshot->plan->run(infer_ctx_.input(), decode_out_, infer_ctx_);
    } else {
      tenant->system->edge().decode_inference(infer_ctx_.input(), decode_out_,
                                              infer_ctx_);
    }
  } catch (const std::exception& e) {
    for (const std::size_t i : good) {
      telemetry_->record_rejected(cluster);
      respond_error(batch[i], ResponseStatus::kInternalError, e.what());
    }
    return;
  }
  // Every layer scope has rewound, so the arena is empty: reset() here
  // coalesces a warmup spill into one slab (a no-op from the second
  // steady-state batch on).
  infer_ctx_.scratch().reset();
  telemetry_->record_batch(good.size());
  const auto respond_start = std::chrono::steady_clock::now();
  telemetry_->record_stage(cluster, Telemetry::Stage::kDecode,
                           between_us(decode_start, respond_start),
                           good.size());
  if (traced) {
    tc.emit({"decode", "serve", tc.to_trace_us(decode_start),
             static_cast<std::int64_t>(between_us(decode_start,
                                                  respond_start)),
             0, cluster, good.size()});
  }

  for (std::size_t row = 0; row < good.size(); ++row) {
    PendingRequest& pending = batch[good[row]];
    DecodeResponse response;
    response.id = pending.request.id;
    response.status = ResponseStatus::kOk;
    // One sized allocation + one memcpy per response, straight out of the
    // shared decode buffer (the response tensor must own its storage — it
    // outlives this batch and the context's buffers are about to be
    // recycled).
    response.reconstruction = decode_out_.row_copy(row);
    response.batch_size = good.size();
    response.model_version = version;
    response.latency_us = elapsed_us(pending.request.enqueued_at);
    if (cache_.enabled() && keys[row].has_value()) {
      cache_.insert(cluster, *std::move(keys[row]), response.reconstruction);
    }
    telemetry_->record_completed(cluster, response.latency_us);
    pending.promise.set_value(std::move(response));
    pending.answered = true;
  }
  const auto respond_end = std::chrono::steady_clock::now();
  telemetry_->record_stage(cluster, Telemetry::Stage::kRespond,
                           between_us(respond_start, respond_end),
                           good.size());
  if (traced) {
    tc.emit({"respond", "serve", tc.to_trace_us(respond_start),
             static_cast<std::int64_t>(between_us(respond_start,
                                                  respond_end)),
             0, cluster, good.size()});
    // Retro "request" spans wrap the stages above: emitted last but
    // starting at enqueue time, so each traced request's queue_wait /
    // assembly / decode / respond nest inside its request span on this
    // worker's track.
    const std::int64_t end_us = tc.to_trace_us(respond_end);
    for (const PendingRequest& pending : batch) {
      if (!pending.request.traced) continue;
      const std::int64_t start_us =
          tc.to_trace_us(pending.request.enqueued_at);
      tc.emit({"request", "serve", start_us, end_us - start_us,
               pending.request.id, cluster, good.size()});
    }
  }
}

}  // namespace orco::serve
