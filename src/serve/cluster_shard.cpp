#include "serve/cluster_shard.h"

#include <chrono>

#include "common/check.h"
#include "common/logging.h"
#include "tensor/ops.h"

namespace orco::serve {

namespace {

double elapsed_us(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - since)
      .count();
}

void respond_error(PendingRequest& pending, ResponseStatus status) {
  DecodeResponse response;
  response.id = pending.request.id;
  response.status = status;
  response.latency_us = elapsed_us(pending.request.enqueued_at);
  pending.promise.set_value(std::move(response));
}

}  // namespace

ClusterShard::ClusterShard(std::size_t index,
                           const BatchQueueConfig& queue_config,
                           Telemetry* telemetry,
                           const tensor::Backend* backend)
    : index_(index),
      queue_(queue_config),
      telemetry_(telemetry),
      backend_(backend) {
  ORCO_CHECK(telemetry != nullptr, "ClusterShard needs a telemetry registry");
}

void ClusterShard::add_cluster(ClusterId cluster,
                               std::shared_ptr<core::OrcoDcsSystem> system) {
  ORCO_CHECK(system != nullptr, "cannot register a null tenant system");
  std::lock_guard lock(tenants_mu_);
  ORCO_CHECK(tenants_.emplace(cluster, std::move(system)).second,
             "cluster " << cluster << " already registered on shard "
                        << index_);
}

bool ClusterShard::has_cluster(ClusterId cluster) const {
  std::lock_guard lock(tenants_mu_);
  return tenants_.count(cluster) > 0;
}

std::size_t ClusterShard::cluster_count() const {
  std::lock_guard lock(tenants_mu_);
  return tenants_.size();
}

std::shared_ptr<core::OrcoDcsSystem> ClusterShard::find_cluster(
    ClusterId cluster) const {
  std::lock_guard lock(tenants_mu_);
  const auto it = tenants_.find(cluster);
  return it == tenants_.end() ? nullptr : it->second;
}

void ClusterShard::run() {
  for (;;) {
    std::vector<PendingRequest> batch = queue_.pop_batch();
    if (batch.empty()) return;  // closed and drained
    try {
      serve_batch(std::move(batch));
    } catch (const std::exception& e) {
      // serve_batch answers per-request failures itself; anything escaping
      // it (e.g. allocation failure) must not kill the shard worker. The
      // affected batch's promises break, the shard keeps serving.
      ORCO_LOG_ERROR("shard " << index_ << " dropped a batch: " << e.what());
    }
  }
}

void ClusterShard::serve_batch(std::vector<PendingRequest> batch) {
  if (batch.empty()) return;
  // Per-ServeConfig kernel backend for everything this batch computes; a
  // tenant with its own OrcoConfig::backend still overrides inside
  // decode_inference (most specific wins).
  tensor::BackendScope scope(backend_);
  const ClusterId cluster = batch.front().request.cluster;
  const auto system = find_cluster(cluster);
  if (system == nullptr) {
    for (auto& pending : batch) {
      // Telemetry strictly before the promise resolves: a caller who sees
      // the future ready must also see the counters updated.
      telemetry_->record_rejected();
      respond_error(pending, ResponseStatus::kUnknownCluster);
    }
    return;
  }

  // Validate shapes up front; only well-formed latents join the GEMM batch.
  const std::size_t latent_dim = system->config().orco.latent_dim;
  std::vector<PendingRequest> good;
  good.reserve(batch.size());
  std::vector<Tensor> latents;
  latents.reserve(batch.size());
  for (auto& pending : batch) {
    const Tensor& latent = pending.request.latent;
    const bool well_formed =
        (latent.rank() == 1 || (latent.rank() == 2 && latent.dim(0) == 1)) &&
        latent.numel() == latent_dim;
    if (!well_formed) {
      telemetry_->record_rejected();
      respond_error(pending, ResponseStatus::kBadRequest);
      continue;
    }
    latents.push_back(latent);
    good.push_back(std::move(pending));
  }
  if (good.empty()) return;

  // One batched decode for the whole coalesced batch: the decoder weights
  // stream through cache once instead of once per request.
  Tensor decoded;
  try {
    decoded = system->edge().decode_inference(tensor::stack_rows(latents));
  } catch (const std::exception& e) {
    for (auto& pending : good) {
      telemetry_->record_rejected();
      DecodeResponse response;
      response.id = pending.request.id;
      response.status = ResponseStatus::kInternalError;
      response.detail = e.what();
      response.latency_us = elapsed_us(pending.request.enqueued_at);
      pending.promise.set_value(std::move(response));
    }
    return;
  }
  telemetry_->record_batch(good.size());

  const std::size_t output_dim = decoded.dim(1);
  for (std::size_t i = 0; i < good.size(); ++i) {
    DecodeResponse response;
    response.id = good[i].request.id;
    response.status = ResponseStatus::kOk;
    response.reconstruction =
        decoded.slice_rows(i, i + 1).reshaped({output_dim});
    response.batch_size = good.size();
    response.latency_us = elapsed_us(good[i].request.enqueued_at);
    telemetry_->record_completed(response.latency_us);
    good[i].promise.set_value(std::move(response));
  }
}

}  // namespace orco::serve
