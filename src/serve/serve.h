// Umbrella header for the multi-cluster serving runtime.
//
// Quickstart:
//
//   #include "serve/serve.h"
//
//   orco::serve::ServeConfig cfg;
//   cfg.shard_count = 4;
//   orco::serve::ServerRuntime runtime(cfg);
//   runtime.register_cluster(/*cluster=*/1, mnist_system);
//   runtime.start();
//   auto future = runtime.submit(1, latent);       // (latent_dim) tensor
//   auto response = future.get();                  // kOk -> reconstruction
//   runtime.shutdown();                            // drains in-flight work
//
// Layering: tensor -> nn -> wsn -> core -> serve. The runtime multiplexes
// many independent core::OrcoDcsSystem tenants behind one batched,
// sharded, bounded-queue front door. train/model_registry.h sits below
// serve (nn-level: immutable snapshot handoff); train/trainer_runtime.h
// sits above it (background fine-tuning that publishes into the registry).
#pragma once

#include "serve/batch_queue.h"            // IWYU pragma: export
#include "serve/tenant_policy.h"          // IWYU pragma: export
#include "serve/cluster_shard.h"          // IWYU pragma: export
#include "serve/reconstruction_cache.h"   // IWYU pragma: export
#include "serve/request.h"                // IWYU pragma: export
#include "serve/server_runtime.h"         // IWYU pragma: export
#include "serve/telemetry.h"              // IWYU pragma: export
#include "train/model_registry.h"         // IWYU pragma: export
