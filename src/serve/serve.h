// Umbrella header for the multi-cluster serving runtime.
//
// Quickstart:
//
//   #include "serve/serve.h"
//
//   orco::serve::ServeConfig cfg;
//   cfg.shard_count = 4;
//   orco::serve::ServerRuntime runtime(cfg);
//   runtime.register_cluster(/*cluster=*/1, mnist_system);
//   runtime.start();
//   auto future = runtime.submit(1, latent);       // (latent_dim) tensor
//   auto response = future.get();                  // kOk -> reconstruction
//   runtime.shutdown();                            // drains in-flight work
//
// Layering: tensor -> nn -> wsn -> core -> serve. The runtime multiplexes
// many independent core::OrcoDcsSystem tenants behind one batched,
// sharded, bounded-queue front door.
#pragma once

#include "serve/batch_queue.h"     // IWYU pragma: export
#include "serve/tenant_policy.h"   // IWYU pragma: export
#include "serve/cluster_shard.h"   // IWYU pragma: export
#include "serve/request.h"         // IWYU pragma: export
#include "serve/server_runtime.h"  // IWYU pragma: export
#include "serve/telemetry.h"       // IWYU pragma: export
