// ServerRuntime — the multi-tenant edge serving runtime.
//
// Owns shard_count ClusterShards, each with its own coalescing BatchQueue
// and exactly one worker task running on an orco::common::ThreadPool (via
// submit()). submit() hash-routes a cluster's latent to its shard and
// returns a future; backpressure is a bounded queue with an explicit
// shed-load answer, and shutdown() is graceful: intake stops, queued work
// drains, workers join, every outstanding future resolves.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "obs/export.h"
#include "serve/cluster_shard.h"

namespace orco::serve {

struct ServeConfig {
  std::size_t shard_count = 4;
  BatchQueueConfig queue;  // applied per shard; queue.default_policy is the
                           // QoS policy for tenants registered without one
  // Kernel backend (tensor/backend.h) every shard worker decodes on:
  // "reference", "blocked", or empty to inherit the process default. A
  // tenant whose OrcoConfig names its own backend overrides this per
  // decode (most specific wins).
  std::string backend;
  // Serve-while-retraining: when set (typically TrainerRuntime::registry()),
  // shards decode registered tenants through the registry's immutable
  // versioned snapshots and pick up hot swaps between batches; when null,
  // shards decode on the tenant's live EdgeServer as before.
  std::shared_ptr<train::ModelRegistry> model_registry;
  // Per-shard latent-keyed reconstruction cache (capacity 0 = off).
  ReconstructionCacheConfig recon_cache;
  // Let shards decode kFixed8 uplink payloads straight through the int8
  // GEMM (Backend::gemm_quantized) when the tenant's OrcoConfig also opts
  // in (both flags must be set). Off: quantized payloads are dequantized
  // row-wise into the float batch — always correct, just more memory
  // traffic. See OrcoConfig::int8_decode for the accuracy contract.
  bool int8_decode = false;
  // Per-tenant telemetry rows (counters + latency histogram per ClusterId,
  // ~8KB each, living for the runtime's lifetime). On by default; a fleet
  // cell fronting ~100k registered tenants turns this off so telemetry
  // memory stays O(1) — per-tenant record_* calls then land in the
  // runtime-wide series only.
  bool per_tenant_telemetry = true;
  // Observability export (obs/export.h): non-empty paths are written by a
  // periodic background flush (flush_period_s > 0) and always once more
  // after the workers join at shutdown — the shutdown dump is the complete
  // one (all trace rings retired, counters final).
  obs::ExportConfig obs_export;
};

class ServerRuntime {
 public:
  explicit ServerRuntime(const ServeConfig& config);

  /// Calls shutdown(); any still-queued requests are served first.
  ~ServerRuntime();

  ServerRuntime(const ServerRuntime&) = delete;
  ServerRuntime& operator=(const ServerRuntime&) = delete;

  /// Registers a tenant on its home shard under the config's default QoS
  /// policy. Allowed before start() and while running; re-registering an id
  /// throws.
  void register_cluster(ClusterId cluster,
                        std::shared_ptr<core::OrcoDcsSystem> system);

  /// Registers a tenant with an explicit per-tenant QoS policy (priority
  /// class, queue quota, scheduling weight) installed on its shard queue.
  void register_cluster(ClusterId cluster,
                        std::shared_ptr<core::OrcoDcsSystem> system,
                        const TenantPolicy& policy);

  /// Removes a tenant: subsequent submits answer kUnknownCluster and the
  /// tenant's (drained) queue lane is reclaimed. The fleet's cold-tier
  /// demotion path; callers must drain the tenant's queued work first —
  /// anything still queued is answered kUnknownCluster when its batch
  /// pops. A batch already in flight finishes safely (the shard's entry is
  /// shared-pointer-owned). Returns false when the id was not registered.
  bool unregister_cluster(ClusterId cluster);

  /// Enqueues one latent for decoding. Always returns a future that will be
  /// fulfilled: kOk with the reconstruction, kShed under backpressure,
  /// kShutdown after shutdown(), kUnknownCluster / kBadRequest on invalid
  /// traffic. Unregistered cluster ids are answered kUnknownCluster
  /// immediately — they get no queue slot, no per-tenant telemetry row and
  /// no QoS standing, so bogus ids cannot grow state or displace real
  /// tenants' work. Requests may be submitted before start(); they queue up
  /// and are served once workers run (subject to queue capacity).
  std::future<DecodeResponse> submit(ClusterId cluster, Tensor latent);

  /// Enqueues one quantized latent payload (core/quantization.h wire
  /// framing: affine header + codes) for decoding, without the caller ever
  /// materializing the float latent. Same answer contract as the float
  /// overload; a payload whose size does not match the tenant's latent_dim
  /// at `precision` is answered kBadRequest. kFixed8 payloads ride the int8
  /// GEMM fast path when both ServeConfig::int8_decode and the tenant's
  /// OrcoConfig::int8_decode are set; all quantized payloads bypass the
  /// reconstruction cache (its keys are float-latent-derived).
  std::future<DecodeResponse> submit(ClusterId cluster,
                                     std::vector<std::uint8_t> payload,
                                     core::LatentPrecision precision);

  /// Launches one worker per shard. Idempotent until shutdown().
  void start();

  /// Graceful stop: refuse new traffic, drain every shard queue, join the
  /// workers. Safe to call multiple times and without start().
  void shutdown();

  bool running() const noexcept { return running_.load(); }
  std::size_t shard_count() const noexcept { return shards_.size(); }
  ClusterShard& shard(std::size_t i) { return *shards_[i]; }
  const ClusterShard& shard(std::size_t i) const { return *shards_[i]; }
  /// The shard a cluster routes to (stable for a fixed shard_count).
  std::size_t shard_of(ClusterId cluster) const {
    return shard_for(cluster, shards_.size());
  }

  /// Writes the configured observability exports now (also runs
  /// periodically and at shutdown when configured). Returns false when any
  /// destination failed.
  bool export_observability() const;

  Telemetry& telemetry() noexcept { return telemetry_; }
  const Telemetry& telemetry() const noexcept { return telemetry_; }
  const ServeConfig& config() const noexcept { return config_; }
  /// The hot-swap registry shards read from; null when serving live models.
  const std::shared_ptr<train::ModelRegistry>& model_registry()
      const noexcept {
    return config_.model_registry;
  }

 private:
  std::future<DecodeResponse> immediate_response(RequestId id,
                                                 ResponseStatus status);
  /// Shared admission tail of both submit overloads: stamps the id and
  /// enqueue time, routes to the owning shard, answers unknown ids and
  /// shutdown up front, and handles backpressure (shed/eviction answers).
  std::future<DecodeResponse> submit_request(DecodeRequest request);
  void start_flusher();
  void stop_flusher();

  ServeConfig config_;
  Telemetry telemetry_;
  std::vector<std::unique_ptr<ClusterShard>> shards_;
  common::ThreadPool pool_;  // one thread per shard worker
  std::vector<std::future<void>> workers_;
  std::atomic<bool> accepting_{true};
  std::atomic<bool> running_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<RequestId> next_request_id_{1};

  // Periodic observability flusher (only when obs_export asks for one).
  std::thread flusher_;
  common::Mutex flush_mu_;
  std::condition_variable flush_cv_;
  bool flush_stop_ ORCO_GUARDED_BY(flush_mu_) = false;
};

}  // namespace orco::serve
