// ReconstructionCache — latent-keyed LRU memo of decoded reconstructions.
//
// Steady-state IoT traffic repeats itself: a cluster whose sensing field is
// quiet uplinks near-identical latents round after round, and decoding each
// copy re-runs the same GEMM. The cache keys on the tenant, the serving
// model version and the *quantized* latent bytes. The key quantizer is
// deliberately not core/quantization's wire format: that payload embeds the
// batch's exact float min/max, so 1e-6 of sensor noise on the extreme
// element would change the header bytes and degenerate the cache to
// exact-match. Instead the key snaps [min, max] outward to a fixed 1/64
// grid and quantizes every value against the snapped range — two latents
// hit the same entry iff every element rounds to the same code against the
// same snapped range, i.e. they differ elementwise by less than one code
// step (unless their extremes straddle a grid line, which only costs a
// miss, never a wrong hit... of a *different* key's entry). The served
// reconstruction can therefore differ from a fresh decode by at most the
// decoder's response to a sub-code-step latent perturbation; pick
// kFixed16 (default) for near-exact matching, kFixed8 for higher hit
// rates on noisy repeat traffic, kFloat32 for bitwise-exact-match-only.
//
// Coherence: the model version is part of the key, so a hot-swapped model
// can never serve a stale reconstruction; ClusterShard additionally calls
// invalidate() on the swapped tenant so dead-version entries stop occupying
// LRU capacity the moment the swap is observed.
//
// Threading: intentionally unsynchronized — each ClusterShard owns one
// cache, touched only by its worker thread (the serve path's "no locks on
// decode" rule). Cross-thread observability goes through serve::Telemetry's
// cache-hit/miss counters instead.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/quantization.h"
#include "serve/request.h"

namespace orco::serve {

struct ReconstructionCacheConfig {
  /// Max cached reconstructions (across all tenants of the shard);
  /// 0 disables the cache entirely.
  std::size_t capacity = 0;
  /// Precision of the quantized-latent key. Coarser keys trade bounded
  /// reconstruction error for a higher hit rate on noisy repeat traffic.
  core::LatentPrecision key_precision = core::LatentPrecision::kFixed16;
};

class ReconstructionCache {
 public:
  explicit ReconstructionCache(const ReconstructionCacheConfig& config);

  bool enabled() const noexcept { return config_.capacity > 0; }

  /// Computes the cache key for (cluster, version, latent), or nullopt
  /// when the latent is not cacheable (disabled cache, or non-finite
  /// values — NaN/Inf would degenerate the affine range and alias
  /// arbitrary latents onto one key). The serve path computes the key
  /// once and reuses it for the miss-then-insert round trip.
  std::optional<std::string> key_for(ClusterId cluster, std::uint64_t version,
                                     const Tensor& latent) const;

  /// Returns the cached reconstruction for a key_for() key and refreshes
  /// its LRU position, or nullptr on miss. The pointer is valid until the
  /// next mutating call.
  const Tensor* lookup(const std::string& key);

  /// Inserts a decoded reconstruction under a key_for() key, evicting the
  /// least-recently-used entry when at capacity. Overwrites an existing
  /// entry for the key. `cluster` must be the key's cluster (it drives
  /// invalidate()).
  void insert(ClusterId cluster, std::string key, Tensor reconstruction);

  /// Convenience wrappers over key_for + the key-based calls.
  const Tensor* lookup(ClusterId cluster, std::uint64_t version,
                       const Tensor& latent);
  void insert(ClusterId cluster, std::uint64_t version, const Tensor& latent,
              Tensor reconstruction);

  /// Drops every entry of one tenant (all versions) — the swap-coherence
  /// hook ClusterShard fires when it observes a model-version change.
  void invalidate(ClusterId cluster);

  void clear();

  std::size_t size() const noexcept { return entries_.size(); }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;      // LRU-capacity evictions only
    std::uint64_t invalidated = 0;    // entries dropped by invalidate()

    double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total > 0 ? static_cast<double>(hits) /
                             static_cast<double>(total)
                       : 0.0;
    }
  };
  const Stats& stats() const noexcept { return stats_; }

 private:
  struct Entry {
    std::string key;
    ClusterId cluster = 0;
    Tensor reconstruction;
  };

  ReconstructionCacheConfig config_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> entries_;
  Stats stats_;
};

}  // namespace orco::serve
