// Serving telemetry: request counters, latency quantiles and batch-occupancy
// histograms, thread-safe for concurrent shard workers and submitters.
//
// Latencies land in log-spaced microsecond buckets so record() is O(1) and
// memory stays constant under million-request loads; quantiles are
// interpolated inside the winning bucket (a few percent of resolution,
// plenty for p50/p95/p99 reporting).
//
// Counters exist at two grains: the runtime-wide totals (the PR-1 snapshot)
// and per-tenant rows keyed on ClusterId — submitted/shed/rejected counts
// plus a full latency histogram per tenant, so QoS policies are observable
// (a high-priority tenant's p99 vs a low-priority one's under overload).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "common/table.h"
#include "serve/request.h"

namespace orco::serve {

class LatencyHistogram {
 public:
  LatencyHistogram();

  void record(double us);

  std::uint64_t count() const noexcept { return count_; }
  double mean_us() const;
  double max_us() const noexcept { return max_us_; }
  /// q in [0, 1]; returns an interpolated bucket position in microseconds.
  double quantile(double q) const;

 private:
  std::size_t bucket_for(double us) const;

  std::vector<std::uint64_t> buckets_;  // bucket b covers [2^(b/4), 2^((b+1)/4)) us
  std::uint64_t count_ = 0;
  double sum_us_ = 0.0;
  double max_us_ = 0.0;
};

struct TelemetrySnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t rejected = 0;  // kUnknownCluster/kBadRequest/kShutdown/kInternalError
  std::uint64_t batches = 0;
  std::uint64_t cache_hits = 0;    // answered from the ReconstructionCache
  std::uint64_t cache_misses = 0;  // looked up but decoded
  double mean_batch_occupancy = 0.0;
  std::size_t max_batch_occupancy = 0;
  double p50_us = 0.0, p95_us = 0.0, p99_us = 0.0;
  double mean_latency_us = 0.0, max_latency_us = 0.0;

  double cache_hit_rate() const {
    const std::uint64_t total = cache_hits + cache_misses;
    return total > 0
               ? static_cast<double>(cache_hits) / static_cast<double>(total)
               : 0.0;
  }

  /// Completed requests per second over `elapsed_s` of wall time.
  double throughput_rps(double elapsed_s) const {
    return elapsed_s > 0.0 ? static_cast<double>(completed) / elapsed_s : 0.0;
  }
};

/// One tenant's view of the counters.
struct TenantSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// Decoder generation that served the tenant's most recent batch (0 when
  /// nothing has been served yet) and how many version changes this
  /// tenant's shard has observed — i.e. hot swaps that actually reached the
  /// serve path.
  std::uint64_t model_version = 0;
  std::uint64_t model_swaps = 0;
  /// Age of the serving snapshot when it last served (us since its
  /// publish): the model-staleness gauge for the online-fine-tuning loop.
  /// 0 on the legacy direct path (the live model is never stale).
  double model_staleness_us = 0.0;
  double p50_us = 0.0, p99_us = 0.0;
  double mean_latency_us = 0.0, max_latency_us = 0.0;
};

class Telemetry {
 public:
  // Runtime-wide counters (kept for callers that have no tenant in hand).
  void record_submitted();
  void record_shed();
  void record_rejected();
  /// One served batch of `occupancy` coalesced requests.
  void record_batch(std::size_t occupancy);
  /// One request answered kOk after `latency_us`.
  void record_completed(double latency_us);

  // Per-tenant variants: update the tenant's row AND the runtime totals.
  void record_submitted(ClusterId cluster);
  void record_shed(ClusterId cluster);
  void record_rejected(ClusterId cluster);
  void record_completed(ClusterId cluster, double latency_us);
  void record_cache_hit(ClusterId cluster);
  void record_cache_miss(ClusterId cluster);
  /// Called once per served batch with the decoder generation that served
  /// it and the snapshot's age (0 for the live, non-snapshot path). Version
  /// changes increment the tenant's swap counter.
  void record_model_version(ClusterId cluster, std::uint64_t version,
                            double staleness_us);

  TelemetrySnapshot snapshot() const;
  TenantSnapshot tenant_snapshot(ClusterId cluster) const;
  std::map<ClusterId, TenantSnapshot> tenant_snapshots() const;

  /// Renders the snapshot as the repo-standard aligned table; pass wall
  /// time to get a throughput row.
  common::Table report(double elapsed_s) const;
  /// One row per tenant: cluster | submitted | completed | shed | rejected |
  /// p50 us | p99 us.
  common::Table tenant_report() const;

 private:
  struct TenantStats {
    std::uint64_t submitted = 0;
    std::uint64_t shed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t model_version = 0;
    std::uint64_t model_swaps = 0;
    double model_staleness_us = 0.0;
    LatencyHistogram latency;
  };

  static TenantSnapshot snapshot_of(const TenantStats& stats);
  /// Caller holds mu_.
  TenantStats& tenant_stats(ClusterId cluster);

  mutable std::mutex mu_;
  std::uint64_t submitted_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t batch_requests_ = 0;
  std::size_t max_occupancy_ = 0;
  LatencyHistogram latency_;
  std::map<ClusterId, TenantStats> tenants_;
};

}  // namespace orco::serve
