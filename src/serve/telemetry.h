// Serving telemetry: request counters, latency quantiles and batch-occupancy
// histograms, thread-safe for concurrent shard workers and submitters.
//
// Since PR 6 this is a typed facade over an obs::MetricsRegistry: every
// counter/histogram the serving path records lives in the registry as a
// named metric (so Prometheus/JSON export sees exactly what the reports
// print), and the hot path is lock-free — each record_* is a handful of
// relaxed atomics on sharded, cache-line-padded cells. The old design took
// one global mutex on EVERY per-request record; under 8 shard workers plus
// client threads that lock was the first thing TSan's contention profile
// surfaced. The mutex that remains (inside the registry, plus a
// shared_mutex over the tenant directory) is only taken on handle creation
// and snapshot/export.
//
// Latencies land in log-spaced microsecond buckets so record() is O(1) and
// memory stays constant under million-request loads; quantiles are
// interpolated inside the winning bucket (a few percent of resolution,
// plenty for p50/p95/p99 reporting). The bucket math is shared with
// obs::Histogram (obs/metrics.h) — both sides are bitwise-identical for the
// same samples.
//
// Counters exist at two grains: the runtime-wide totals (the PR-1 snapshot)
// and per-tenant rows keyed on ClusterId — submitted/shed/rejected counts
// plus a full latency histogram per tenant, so QoS policies are observable
// (a high-priority tenant's p99 vs a low-priority one's under overload).
// PR 6 adds a third grain: per-tenant per-STAGE accounting (queue wait,
// batch assembly, decode, respond) so a latency regression can be localized
// to the pipeline stage that grew.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/table.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "serve/request.h"

namespace orco::serve {

/// Single-writer log-bucketed histogram (the obs::Histogram bucket layout
/// without the sharding/atomics). Kept for callers that aggregate privately
/// — bench percentile tracks, tests — and as the reference implementation
/// the sharded cells are pinned against.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void record(double us);
  /// Element-wise accumulate of another histogram (bucket counts, count,
  /// sum, max) — merging per-worker locals into one distribution.
  void merge(const LatencyHistogram& other);

  std::uint64_t count() const noexcept { return count_; }
  double mean_us() const;
  double max_us() const noexcept { return max_us_; }
  /// q in [0, 1]; returns an interpolated bucket position in microseconds.
  double quantile(double q) const;

  /// The canonical bucket index for a microsecond value (quarter-powers of
  /// two; see obs::hist_bucket_for).
  static std::size_t bucket_for(double us) { return obs::hist_bucket_for(us); }

 private:
  std::vector<std::uint64_t> buckets_;  // bucket b covers [2^(b/4), 2^((b+1)/4)) us
  std::uint64_t count_ = 0;
  double sum_us_ = 0.0;
  double max_us_ = 0.0;
};

struct TelemetrySnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t rejected = 0;  // kUnknownCluster/kBadRequest/kShutdown/kInternalError
  std::uint64_t batches = 0;
  std::uint64_t cache_hits = 0;    // answered from the ReconstructionCache
  std::uint64_t cache_misses = 0;  // looked up but decoded
  double mean_batch_occupancy = 0.0;
  std::size_t max_batch_occupancy = 0;
  double p50_us = 0.0, p95_us = 0.0, p99_us = 0.0;
  double mean_latency_us = 0.0, max_latency_us = 0.0;

  double cache_hit_rate() const {
    const std::uint64_t total = cache_hits + cache_misses;
    return total > 0
               ? static_cast<double>(cache_hits) / static_cast<double>(total)
               : 0.0;
  }

  /// Completed requests per second over `elapsed_s` of wall time.
  double throughput_rps(double elapsed_s) const {
    return elapsed_s > 0.0 ? static_cast<double>(completed) / elapsed_s : 0.0;
  }
};

/// One tenant's view of the counters.
struct TenantSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// Decoder generation that served the tenant's most recent batch (0 when
  /// nothing has been served yet) and how many version changes this
  /// tenant's shard has observed — i.e. hot swaps that actually reached the
  /// serve path.
  std::uint64_t model_version = 0;
  std::uint64_t model_swaps = 0;
  /// Age of the serving snapshot when it last served (us since its
  /// publish): the model-staleness gauge for the online-fine-tuning loop.
  /// 0 on the legacy direct path (the live model is never stale).
  double model_staleness_us = 0.0;
  double p50_us = 0.0, p99_us = 0.0;
  double mean_latency_us = 0.0, max_latency_us = 0.0;
};

class Telemetry {
 public:
  /// The serve-pipeline stages the per-tenant breakdown accounts.
  enum class Stage : std::size_t {
    kQueueWait = 0,  // submit enqueue -> batch pop
    kAssembly,       // shape validation + cache lookup + latent stacking
    kDecode,         // decoder inference
    kRespond,        // row copy + cache insert + promise fulfilment
  };
  static constexpr std::size_t kStageCount = 4;

  /// One stage's accumulated totals for a tenant.
  struct StageSnapshot {
    std::uint64_t us = 0;        // total stage time
    std::uint64_t requests = 0;  // requests that time was spent on

    double mean_us() const {
      return requests > 0
                 ? static_cast<double>(us) / static_cast<double>(requests)
                 : 0.0;
    }
  };

  /// `per_tenant` false drops the per-tenant grain entirely: record_*
  /// overloads taking a ClusterId update only the runtime-wide series and
  /// never allocate a tenant row. A fleet cell fronting ~100k registered
  /// tenants would otherwise pin ~8KB of cells per tenant forever.
  explicit Telemetry(bool per_tenant = true);

  // Runtime-wide counters (kept for callers that have no tenant in hand).
  void record_submitted();
  void record_shed();
  void record_rejected();
  /// One served batch of `occupancy` coalesced requests.
  void record_batch(std::size_t occupancy);
  /// One request answered kOk after `latency_us`.
  void record_completed(double latency_us);

  // Per-tenant variants: update the tenant's row AND the runtime totals.
  void record_submitted(ClusterId cluster);
  void record_shed(ClusterId cluster);
  void record_rejected(ClusterId cluster);
  void record_completed(ClusterId cluster, double latency_us);
  void record_cache_hit(ClusterId cluster);
  void record_cache_miss(ClusterId cluster);
  /// Called once per served batch with the decoder generation that served
  /// it and the snapshot's age (0 for the live, non-snapshot path). Version
  /// changes increment the tenant's swap counter.
  void record_model_version(ClusterId cluster, std::uint64_t version,
                            double staleness_us);
  /// Accounts `stage_us` of `stage` time spent on `requests` requests of
  /// `cluster`. Batch-scoped stages (assembly/decode/respond) record the
  /// batch duration once with requests = batch occupancy; queue wait is
  /// per-request.
  void record_stage(ClusterId cluster, Stage stage, double stage_us,
                    std::uint64_t requests = 1);

  TelemetrySnapshot snapshot() const;
  TenantSnapshot tenant_snapshot(ClusterId cluster) const;
  std::map<ClusterId, TenantSnapshot> tenant_snapshots() const;
  /// Per-stage totals for one tenant, indexed by Stage.
  std::array<StageSnapshot, kStageCount> stage_snapshot(
      ClusterId cluster) const;

  /// Renders the snapshot as the repo-standard aligned table; pass wall
  /// time to get a throughput row.
  common::Table report(double elapsed_s) const;
  /// One row per tenant: cluster | submitted | completed | shed | rejected |
  /// p50 us | p99 us.
  common::Table tenant_report() const;
  /// Per-tenant stage breakdown: mean us/request spent in each pipeline
  /// stage (cluster | queue wait us | assembly us | decode us | respond us
  /// | accounted us).
  common::Table stage_report() const;

  /// The backing registry — for Prometheus/JSON export and for registering
  /// adjacent metrics under the same scrape.
  obs::MetricsRegistry& registry() noexcept { return registry_; }
  const obs::MetricsRegistry& registry() const noexcept { return registry_; }

 private:
  /// Handles for one tenant's metrics. Counter/histogram writes go through
  /// registry cells; model-version fields are single-writer (the tenant's
  /// shard worker) and read with relaxed loads by snapshots.
  struct TenantCells {
    obs::Counter* submitted;
    obs::Counter* shed;
    obs::Counter* rejected;
    obs::Counter* cache_hits;
    obs::Counter* cache_misses;
    obs::Histogram* latency;  // 1 cell: one shard worker records per tenant
    obs::Counter* stage_us[kStageCount];
    obs::Counter* stage_requests[kStageCount];
    std::atomic<std::uint64_t> model_version{0};
    std::atomic<std::uint64_t> model_swaps{0};
    std::atomic<double> model_staleness_us{0.0};
  };

  static TenantSnapshot snapshot_of(const TenantCells& cells);
  /// Shared-locks for the (overwhelmingly common) existing-tenant lookup,
  /// upgrades to a unique lock only to create a new tenant's row.
  TenantCells& tenant_cells(ClusterId cluster);
  const TenantCells* find_tenant(ClusterId cluster) const;

  obs::MetricsRegistry registry_;
  const bool per_tenant_;

  // Runtime-wide handles, resolved once at construction.
  obs::Counter* submitted_;
  obs::Counter* shed_;
  obs::Counter* rejected_;
  obs::Counter* cache_hits_;
  obs::Counter* cache_misses_;
  obs::Counter* batches_;
  obs::Counter* batch_requests_;
  obs::Gauge* max_occupancy_;
  obs::Histogram* latency_;

  /// Guards the tenant *directory* only, never the cells: record paths
  /// take it shared for the lookup and write through lock-free registry
  /// cells; only first-seen tenant creation upgrades to exclusive.
  mutable common::SharedMutex tenants_mu_;
  std::map<ClusterId, std::unique_ptr<TenantCells>> tenants_
      ORCO_GUARDED_BY(tenants_mu_);
};

}  // namespace orco::serve
