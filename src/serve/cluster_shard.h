// ClusterShard — one shard of the serving runtime's tenant space.
//
// Cluster ids hash onto shards with shard_for(); each shard owns the
// OrcoDcsSystem instances of its clusters and is driven by exactly one
// worker thread, so tenant state needs no locks on the serve path. The
// shard's BatchQueue hands the worker same-cluster batches which are
// decoded with a single batched decode_inference call and fanned back out
// to the per-request futures.
//
// Serve-while-retraining: when a train::ModelRegistry is attached, the
// shard decodes through the tenant's current immutable ModelSnapshot — one
// atomic load per batch picks up hot swaps published by the background
// TrainerRuntime, the snapshot's shared_ptr pins exactly one coherent model
// for the whole fan-out, and an observed version change invalidates the
// tenant's entries in the shard's latent-keyed ReconstructionCache. Without
// a registry the shard falls back to decoding on the tenant's live
// EdgeServer (fine as long as nothing trains it concurrently).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/system.h"
#include "serve/batch_queue.h"
#include "serve/reconstruction_cache.h"
#include "serve/request.h"
#include "serve/telemetry.h"
#include "tensor/backend.h"
#include "train/model_registry.h"

namespace orco::serve {

/// Stable hash route: splitmix64 finalizer over the cluster id. Same id
/// always lands on the same shard for a given shard_count.
inline std::size_t shard_for(ClusterId cluster, std::size_t shard_count) {
  std::uint64_t x = cluster + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<std::size_t>(x % shard_count);
}

class ClusterShard {
 public:
  /// `backend` (nullable) pins this shard's decode GEMMs to one kernel
  /// backend (tensor/backend.h); null inherits the process default.
  /// `registry` (nullable) enables the hot-swap path for tenants published
  /// there; `cache_config.capacity > 0` enables the shard's
  /// ReconstructionCache. `int8_decode` arms the int8 GEMM fast path for
  /// kFixed8 batches of tenants whose OrcoConfig also opts in.
  ClusterShard(std::size_t index, const BatchQueueConfig& queue_config,
               Telemetry* telemetry,
               const tensor::Backend* backend = nullptr,
               std::shared_ptr<train::ModelRegistry> registry = nullptr,
               const ReconstructionCacheConfig& cache_config = {},
               bool int8_decode = false);

  std::size_t index() const noexcept { return index_; }
  BatchQueue& queue() noexcept { return queue_; }

  /// Registers a tenant under the queue's default policy. The system is
  /// shared so callers can keep training or monitoring it between serve
  /// batches: with a model registry attached the trainer may mutate it
  /// freely (the serve path only reads registry snapshots); without one,
  /// external mutation should pause traffic first.
  void add_cluster(ClusterId cluster,
                   std::shared_ptr<core::OrcoDcsSystem> system);

  /// Registers a tenant with an explicit QoS policy, installed on the
  /// shard's BatchQueue (admission quota + weighted-priority scheduling).
  void add_cluster(ClusterId cluster,
                   std::shared_ptr<core::OrcoDcsSystem> system,
                   const TenantPolicy& policy);

  /// Removes a tenant (the fleet's cold-tier demotion path). Returns false
  /// when the id was never registered. The caller must have drained the
  /// tenant's queued work first: a request still queued when its batch pops
  /// is answered kUnknownCluster. A batch already holding the entry
  /// finishes on it safely (entries are shared_ptr-owned).
  bool remove_cluster(ClusterId cluster);

  bool has_cluster(ClusterId cluster) const;
  std::size_t cluster_count() const;

  /// Worker loop: pops batches until the queue is closed and drained.
  /// Runs on exactly one thread per shard.
  void run();

  /// Decodes one same-cluster batch and fulfils every request's promise.
  /// Exposed for tests; normally called from run().
  void serve_batch(std::vector<PendingRequest> batch);

  /// Worker-thread-owned cache stats; read from other threads only after
  /// the worker has stopped (e.g. post-shutdown reporting).
  const ReconstructionCache::Stats& recon_cache_stats() const noexcept {
    return cache_.stats();
  }

 private:
  /// One registered tenant: the live system plus (when a registry is
  /// attached) its swap slot and the last decoder generation this shard
  /// served for it — the edge that triggers swap-coherent cache
  /// invalidation. `last_version` is only touched by the shard worker.
  struct TenantEntry {
    std::shared_ptr<core::OrcoDcsSystem> system;
    std::shared_ptr<train::ModelRegistry::Entry> model;  // null: direct path
    std::uint64_t last_version = 0;
  };

  /// Entries are shared_ptr-owned so a lookup outlives both the internal
  /// lock hold and a concurrent remove_cluster: the worker's batch keeps
  /// the entry (and its system/model slot) alive through its fan-out even
  /// if the tenant is demoted mid-batch.
  std::shared_ptr<TenantEntry> find_cluster(ClusterId cluster)
      ORCO_EXCLUDES(tenants_mu_);

  std::size_t index_;
  BatchQueue queue_;
  Telemetry* telemetry_;  // runtime-owned; never null
  const tensor::Backend* backend_;  // nullable: inherit process default
  std::shared_ptr<train::ModelRegistry> registry_;  // nullable
  ReconstructionCache cache_;  // worker-thread-owned
  /// Worker-thread-owned inference memory, reused across batches and sized
  /// to the shard's high-water mark: batch assembly writes the coalesced
  /// latents straight into infer_ctx_'s input buffer (no stack_rows), the
  /// decoder ping-pongs through the context, and the decode lands in
  /// decode_out_, out of which responses are filled by row copies. After
  /// the first batch at the largest shapes, a steady-state decode performs
  /// zero heap allocations.
  nn::InferContext infer_ctx_;
  Tensor decode_out_;
  /// Int8 fast-path staging, worker-thread-owned and high-water-mark sized
  /// like the context: the batch's uint8 codes packed row-major plus the
  /// per-row affine headers the fused GEMM reads (tensor::QuantHeader).
  bool int8_decode_;
  std::vector<std::uint8_t> q_codes_;
  std::vector<float> q_lo_;
  std::vector<float> q_scale_;
  mutable common::Mutex tenants_mu_;  // guards registration vs. lookup only
  std::map<ClusterId, std::shared_ptr<TenantEntry>> tenants_
      ORCO_GUARDED_BY(tenants_mu_);
};

}  // namespace orco::serve
