// ClusterShard — one shard of the serving runtime's tenant space.
//
// Cluster ids hash onto shards with shard_for(); each shard owns the
// OrcoDcsSystem instances of its clusters and is driven by exactly one
// worker thread, so tenant state needs no locks on the serve path. The
// shard's BatchQueue hands the worker same-cluster batches which are
// decoded with a single batched decode_inference call and fanned back out
// to the per-request futures.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/system.h"
#include "serve/batch_queue.h"
#include "serve/request.h"
#include "serve/telemetry.h"
#include "tensor/backend.h"

namespace orco::serve {

/// Stable hash route: splitmix64 finalizer over the cluster id. Same id
/// always lands on the same shard for a given shard_count.
inline std::size_t shard_for(ClusterId cluster, std::size_t shard_count) {
  std::uint64_t x = cluster + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<std::size_t>(x % shard_count);
}

class ClusterShard {
 public:
  /// `backend` (nullable) pins this shard's decode GEMMs to one kernel
  /// backend (tensor/backend.h); null inherits the process default.
  ClusterShard(std::size_t index, const BatchQueueConfig& queue_config,
               Telemetry* telemetry,
               const tensor::Backend* backend = nullptr);

  std::size_t index() const noexcept { return index_; }
  BatchQueue& queue() noexcept { return queue_; }

  /// Registers a tenant under the queue's default policy. The system is
  /// shared so callers can keep training or monitoring it between serve
  /// batches (same-shard serialization makes that safe only from the shard
  /// worker; external mutation should pause traffic first).
  void add_cluster(ClusterId cluster,
                   std::shared_ptr<core::OrcoDcsSystem> system);

  /// Registers a tenant with an explicit QoS policy, installed on the
  /// shard's BatchQueue (admission quota + weighted-priority scheduling).
  void add_cluster(ClusterId cluster,
                   std::shared_ptr<core::OrcoDcsSystem> system,
                   const TenantPolicy& policy);

  bool has_cluster(ClusterId cluster) const;
  std::size_t cluster_count() const;

  /// Worker loop: pops batches until the queue is closed and drained.
  /// Runs on exactly one thread per shard.
  void run();

  /// Decodes one same-cluster batch and fulfils every request's promise.
  /// Exposed for tests; normally called from run().
  void serve_batch(std::vector<PendingRequest> batch);

 private:
  std::shared_ptr<core::OrcoDcsSystem> find_cluster(ClusterId cluster) const;

  std::size_t index_;
  BatchQueue queue_;
  Telemetry* telemetry_;  // runtime-owned; never null
  const tensor::Backend* backend_;  // nullable: inherit process default
  mutable std::mutex tenants_mu_;  // guards registration vs. lookup only
  std::map<ClusterId, std::shared_ptr<core::OrcoDcsSystem>> tenants_;
};

}  // namespace orco::serve
