#include "apps/classifier.h"

#include "common/check.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pooling.h"
#include "tensor/ops.h"

namespace orco::apps {

CnnClassifier::CnnClassifier(const data::ImageGeometry& geometry,
                             std::size_t num_classes,
                             const ClassifierConfig& config)
    : geometry_(geometry),
      num_classes_(num_classes),
      config_(config),
      loader_rng_(config.seed ^ 0xc1a5ULL) {
  ORCO_CHECK(num_classes >= 2, "classifier needs at least two classes");
  ORCO_CHECK(geometry.height % 4 == 0 || geometry.height == 28,
             "classifier supports 28x28 / 32x32-style inputs");
  common::Pcg32 rng(config.seed, /*stream=*/0x636c6173ULL);  // "clas"

  // Two conv blocks then a linear head.
  model_ = std::make_unique<nn::Sequential>();
  model_->emplace<nn::Conv2d>(geometry.channels, 8, 3, 1, 1, geometry.height,
                              geometry.width, rng);
  model_->emplace<nn::ReLU>();
  model_->emplace<nn::MaxPool2d>(8, geometry.height, geometry.width, 2, 2);
  const std::size_t h1 = geometry.height / 2, w1 = geometry.width / 2;
  model_->emplace<nn::Conv2d>(8, 16, 3, 1, 1, h1, w1, rng);
  model_->emplace<nn::ReLU>();
  model_->emplace<nn::MaxPool2d>(16, h1, w1, 2, 2);
  const std::size_t h2 = h1 / 2, w2 = w1 / 2;
  model_->emplace<nn::Dense>(16 * h2 * w2, num_classes, rng);
  ORCO_ENSURE(model_->output_features(geometry.features()) == num_classes,
              "classifier head mismatch");

  optimizer_ =
      std::make_unique<nn::Adam>(model_->params(), config.learning_rate);
}

float CnnClassifier::train_epoch(const data::Dataset& train) {
  ORCO_CHECK(train.geometry() == geometry_, "dataset geometry mismatch");
  data::DataLoader loader(train, config_.batch_size, /*shuffle=*/true,
                          loader_rng_.split());
  double loss_acc = 0.0;
  for (std::size_t b = 0; b < loader.batch_count(); ++b) {
    const auto batch = loader.batch(b);
    const auto logits = model_->forward(batch.images, /*training=*/true);
    loss_acc += loss_.value(logits, batch.labels);
    optimizer_->zero_grad();
    (void)model_->backward(loss_.gradient(logits, batch.labels));
    optimizer_->step();
  }
  return static_cast<float>(loss_acc /
                            static_cast<double>(loader.batch_count()));
}

CnnClassifier::Eval CnnClassifier::evaluate(const data::Dataset& test) {
  ORCO_CHECK(test.geometry() == geometry_, "dataset geometry mismatch");
  double loss_acc = 0.0;
  std::size_t hits = 0;
  std::size_t batches = 0;
  for (std::size_t begin = 0; begin < test.size();
       begin += config_.batch_size) {
    const std::size_t end = std::min(begin + config_.batch_size, test.size());
    const auto images = test.images().slice_rows(begin, end);
    std::vector<std::size_t> labels(test.labels().begin() + static_cast<std::ptrdiff_t>(begin),
                                    test.labels().begin() + static_cast<std::ptrdiff_t>(end));
    const auto logits = model_->forward(images, /*training=*/false);
    loss_acc += loss_.value(logits, labels);
    const auto pred = tensor::argmax_rows(logits);
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (pred[i] == labels[i]) ++hits;
    }
    ++batches;
  }
  ORCO_ENSURE(batches > 0, "empty evaluation set");
  return Eval{static_cast<double>(hits) / static_cast<double>(test.size()),
              loss_acc / static_cast<double>(batches)};
}

std::vector<std::size_t> CnnClassifier::predict(const tensor::Tensor& images) {
  const auto logits = model_->forward(images, /*training=*/false);
  return tensor::argmax_rows(logits);
}

data::Dataset reconstruct_dataset(
    const data::Dataset& source,
    const std::function<tensor::Tensor(const tensor::Tensor&)>& reconstruct,
    std::size_t batch_size) {
  ORCO_CHECK(batch_size > 0, "batch size must be positive");
  tensor::Tensor images({source.size(), source.geometry().features()});
  for (std::size_t begin = 0; begin < source.size(); begin += batch_size) {
    const std::size_t end = std::min(begin + batch_size, source.size());
    const auto rec = reconstruct(source.images().slice_rows(begin, end));
    ORCO_CHECK(rec.rank() == 2 && rec.dim(0) == end - begin &&
                   rec.dim(1) == source.geometry().features(),
               "reconstruct() returned wrong shape");
    for (std::size_t i = 0; i < end - begin; ++i) {
      const auto row = rec.row(i);
      std::copy(row.begin(), row.end(), images.row(begin + i).begin());
    }
  }
  return data::Dataset(source.name() + "+reconstructed", source.geometry(),
                       source.num_classes(), std::move(images),
                       std::vector<std::size_t>(source.labels()));
}

}  // namespace orco::apps
