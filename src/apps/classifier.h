// Follow-up DL application (paper §IV-A): "a simple 2-layer convolutional
// neural network" trained on reconstructed data. Its accuracy/loss measures
// how useful a CDA framework's reconstructions are for downstream IoT
// analytics — the paper's secondary objective.
#pragma once

#include <functional>
#include <memory>

#include "data/dataloader.h"
#include "data/dataset.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"

namespace orco::apps {

struct ClassifierConfig {
  float learning_rate = 1e-3f;  // Adam
  std::size_t batch_size = 64;
  std::uint64_t seed = 99;
};

class CnnClassifier {
 public:
  CnnClassifier(const data::ImageGeometry& geometry, std::size_t num_classes,
                const ClassifierConfig& config);

  /// One training epoch; returns the mean training loss.
  float train_epoch(const data::Dataset& train);

  struct Eval {
    double accuracy = 0.0;
    double loss = 0.0;
  };

  /// Accuracy and mean cross-entropy on a held-out set.
  Eval evaluate(const data::Dataset& test);

  /// Predicted class per row of a (B, features) tensor.
  std::vector<std::size_t> predict(const tensor::Tensor& images);

  nn::Sequential& model() noexcept { return *model_; }

 private:
  data::ImageGeometry geometry_;
  std::size_t num_classes_;
  ClassifierConfig config_;
  std::unique_ptr<nn::Sequential> model_;
  std::unique_ptr<nn::Adam> optimizer_;
  nn::SoftmaxCrossEntropy loss_;
  common::Pcg32 loader_rng_;
};

/// Reconstruction-driven dataset: replaces every image with
/// `reconstruct(image)` while keeping labels — how the paper trains
/// classifiers on data reconstructed by OrcoDCS / DCSNet.
data::Dataset reconstruct_dataset(
    const data::Dataset& source,
    const std::function<tensor::Tensor(const tensor::Tensor&)>& reconstruct,
    std::size_t batch_size = 128);

}  // namespace orco::apps
