// Umbrella header for the online background fine-tuning runtime.
//
// Quickstart (serve and fine-tune concurrently):
//
//   #include "serve/serve.h"
//   #include "train/train.h"
//
//   orco::train::TrainerRuntime trainer;           // background workers
//   trainer.register_tenant(1, system);            // publishes snapshot v1
//
//   orco::serve::ServeConfig cfg;
//   cfg.model_registry = trainer.registry();       // shards hot-swap from it
//   orco::serve::ServerRuntime runtime(cfg);
//   runtime.register_cluster(1, system);
//   runtime.start();
//   trainer.start();
//
//   trainer.submit_job(1, drifted_dataset, 2);     // fine-tune off-path...
//   auto f = runtime.submit(1, latent);            // ...while serving runs;
//   f.get().model_version;                         // bumps after the swap
//
// Layering: model_registry depends on nn/ only (so serve/ can read it);
// trainer_runtime depends on core/ + serve/ and sits at the top of the
// stack.
#pragma once

#include "train/model_registry.h"   // IWYU pragma: export
#include "train/train_job.h"        // IWYU pragma: export
#include "train/trainer_runtime.h"  // IWYU pragma: export
