#include "train/model_registry.h"

#include "common/check.h"

namespace orco::train {

std::shared_ptr<ModelRegistry::Entry> ModelRegistry::entry(ClusterId cluster) {
  common::MutexLock lock(mu_);
  auto& slot = entries_[cluster];
  if (slot == nullptr) slot = std::make_shared<Entry>();
  return slot;
}

std::shared_ptr<ModelRegistry::Entry> ModelRegistry::find(
    ClusterId cluster) const {
  common::MutexLock lock(mu_);
  const auto it = entries_.find(cluster);
  return it == entries_.end() ? nullptr : it->second;
}

std::shared_ptr<const ModelSnapshot> ModelRegistry::current(
    ClusterId cluster) const {
  const auto slot = find(cluster);
  return slot == nullptr ? nullptr : slot->load();
}

std::uint64_t ModelRegistry::publish(ClusterId cluster,
                                     std::shared_ptr<ModelSnapshot> snapshot) {
  ORCO_CHECK(snapshot != nullptr, "cannot publish a null snapshot");
  ORCO_CHECK(snapshot->decoder != nullptr,
             "snapshot for cluster " << cluster << " has no decoder");
  ORCO_CHECK(snapshot->latent_dim > 0 && snapshot->output_dim > 0,
             "snapshot dims must be positive");
  if (snapshot->plan == nullptr) {
    // Compile once per published version, outside the lock — the plan is
    // what shards execute, so every snapshot must carry one. Pack under
    // the snapshot's pinned backend (the one shards will decode with);
    // null falls through to the publisher's current backend.
    snapshot->plan = nn::InferPlan::compile(*snapshot->decoder,
                                            snapshot->backend);
  }
  std::shared_ptr<const ModelSnapshot> installed;
  PublishHook hook;
  std::uint64_t version = 0;
  {
    // Serialize publishers per registry (publishes are rare — one per
    // fine-tune job) so the version check and the swap are one step;
    // readers never take this lock.
    common::MutexLock lock(mu_);
    auto& slot = entries_[cluster];
    if (slot == nullptr) slot = std::make_shared<Entry>();
    const auto previous = slot->load();
    ORCO_CHECK(previous == nullptr || snapshot->version > previous->version,
               "non-monotonic publish for cluster "
                   << cluster << ": version " << snapshot->version
                   << " after " << previous->version);
    snapshot->published_at = std::chrono::steady_clock::now();
    version = snapshot->version;
    installed = std::shared_ptr<const ModelSnapshot>(std::move(snapshot));
    slot->snapshot_.store(installed, std::memory_order_release);
    slot->swaps_.fetch_add(1, std::memory_order_relaxed);
    total_published_.fetch_add(1, std::memory_order_relaxed);
    hook = publish_hook_;  // copy: the hook runs outside the lock
  }
  if (hook) hook(cluster, installed);
  return version;
}

bool ModelRegistry::remove(ClusterId cluster) {
  common::MutexLock lock(mu_);
  return entries_.erase(cluster) > 0;
}

void ModelRegistry::set_publish_hook(PublishHook hook) {
  common::MutexLock lock(mu_);
  publish_hook_ = std::move(hook);
}

std::size_t ModelRegistry::size() const {
  common::MutexLock lock(mu_);
  return entries_.size();
}

}  // namespace orco::train
