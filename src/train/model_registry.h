// ModelRegistry — versioned, immutable model snapshots with atomic hot-swap.
//
// The serve-while-retraining loop needs two worlds that never block each
// other: shard workers decoding at full rate, and trainer threads mutating
// decoder weights. The registry is the handoff point. A ModelSnapshot is an
// immutable (encoder, decoder) pair stamped with the EdgeServer's
// monotonically increasing model version; publishing swaps one
// std::atomic<std::shared_ptr> per tenant, so a shard picks up the new
// model between batches with a single acquire load — no lock on the decode
// path, and a batch already in flight keeps its snapshot alive (and
// coherent) through its own shared_ptr until the fan-out completes.
//
// Layering: this header depends on nn/ only, so serve/ can hold registry
// entries while train/'s TrainerRuntime (which depends on core/ and serve/)
// produces them.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "nn/infer_plan.h"
#include "nn/sequential.h"
#include "tensor/backend.h"

namespace orco::train {

/// Same id space as serve::ClusterId (both are the tenant's cluster id).
using ClusterId = std::uint64_t;

/// One immutable model generation. The decoder (and optional encoder — the
/// §III-C broadcast package a client refreshes after a swap) must never be
/// mutated after publication: shard workers call infer() on them
/// concurrently with later generations being trained.
struct ModelSnapshot {
  std::uint64_t version = 0;  // EdgeServer::model_version() at export time
  std::shared_ptr<const nn::Sequential> decoder;
  std::shared_ptr<const nn::Sequential> encoder;  // may be null
  std::size_t latent_dim = 0;
  std::size_t output_dim = 0;
  /// Kernel backend the exporting tenant pinned (OrcoConfig::backend);
  /// nullptr inherits the serving shard's selection.
  const tensor::Backend* backend = nullptr;
  /// Compiled-once inference plan over `decoder` — the executor every
  /// shard pinning this snapshot runs (see nn/infer_plan.h). Publishers
  /// may pre-compile it (TrainerRuntime does, under the serving backend);
  /// ModelRegistry::publish compiles it when absent, so a published
  /// snapshot always carries one. Immutable and shared like the snapshot.
  std::shared_ptr<const nn::InferPlan> plan;
  std::chrono::steady_clock::time_point published_at;

  /// Age of this snapshot (how stale the served model is) in microseconds.
  double age_us(std::chrono::steady_clock::time_point now) const {
    return std::chrono::duration<double, std::micro>(now - published_at)
        .count();
  }
};

class ModelRegistry {
 public:
  /// One tenant's swap slot. A shard grabs the shared Entry at tenant
  /// registration and pays exactly one atomic load per batch; remove()
  /// (the fleet's demotion path) only drops the registry's reference —
  /// holders keep the slot alive until their batch completes.
  class Entry {
   public:
    std::shared_ptr<const ModelSnapshot> load() const {
      return snapshot_.load(std::memory_order_acquire);
    }
    std::uint64_t swap_count() const noexcept {
      return swaps_.load(std::memory_order_relaxed);
    }

   private:
    friend class ModelRegistry;
    std::atomic<std::shared_ptr<const ModelSnapshot>> snapshot_;
    std::atomic<std::uint64_t> swaps_{0};
  };

  /// Get-or-create the tenant's swap slot (empty until the first publish).
  std::shared_ptr<Entry> entry(ClusterId cluster);

  /// Lookup without creating; null when the tenant was never seen.
  std::shared_ptr<Entry> find(ClusterId cluster) const;

  /// Latest snapshot for the tenant, or null before the first publish.
  std::shared_ptr<const ModelSnapshot> current(ClusterId cluster) const;

  /// Atomically installs `snapshot` as the tenant's serving model. Versions
  /// must be strictly increasing per tenant (they mirror the tenant
  /// EdgeServer's train-step counter); a stale or duplicate version throws
  /// and leaves the current snapshot in place. `published_at` is stamped
  /// here. Returns the published version.
  std::uint64_t publish(ClusterId cluster,
                        std::shared_ptr<ModelSnapshot> snapshot);

  /// Drops the tenant's swap slot (the fleet's cold-tier demotion).
  /// Outstanding Entry shared_ptrs stay valid — a shard's in-flight batch
  /// finishes on its pinned snapshot — but a re-registered tenant starts
  /// from a fresh slot, so its first publish after reactivation only has
  /// to beat the version persisted in its checkpoint, not whatever the
  /// dead slot last held. Returns false when the tenant was never seen.
  bool remove(ClusterId cluster);

  /// Called after every successful publish — outside the registry lock, on
  /// the publishing thread — with the tenant and the installed snapshot.
  /// The fleet hangs its delta-replication fan-out here. One hook per
  /// registry; replace with nullptr to clear. Hooks must not publish back
  /// into this registry for the same tenant (infinite recursion).
  using PublishHook =
      std::function<void(ClusterId, const std::shared_ptr<const ModelSnapshot>&)>;
  void set_publish_hook(PublishHook hook);

  std::size_t size() const;
  /// Total snapshots published across all tenants.
  std::uint64_t total_published() const noexcept {
    return total_published_.load(std::memory_order_relaxed);
  }

 private:
  /// Guards the map only; swaps are per-entry atomics a shard reads with
  /// one acquire load per batch, never under this lock.
  mutable common::Mutex mu_;
  std::map<ClusterId, std::shared_ptr<Entry>> entries_ ORCO_GUARDED_BY(mu_);
  PublishHook publish_hook_ ORCO_GUARDED_BY(mu_);
  std::atomic<std::uint64_t> total_published_{0};
};

}  // namespace orco::train
