// TrainerRuntime — online background fine-tuning concurrently with serving.
//
// The paper's central loop (§III-B + §III-D) is serve-while-retraining: the
// edge keeps reconstructing from live latents while the orchestrated
// training protocol adapts the per-cluster autoencoder to drift. PR 1-3
// could serve OR train; this runtime does both at once:
//
//   * worker threads pop TrainJobs (explicit submit_job, or enqueued by the
//     per-tenant FineTuningMonitor when observed reconstruction error
//     drifts past its threshold) and run the §III-B protocol rounds on the
//     tenant's OrcoDcsSystem — which serving no longer touches;
//   * each tenant has a TrainBudget (rounds cap + duty cycle) and a
//     serve::TenantPolicy whose priority orders the job queue, so
//     fine-tuning cannot starve either the serving shards or other
//     tenants' jobs;
//   * when a job finishes, the freshly trained encoder/decoder pair is
//     cloned into an immutable ModelSnapshot stamped with the EdgeServer's
//     model version and atomically published to the ModelRegistry — the
//     serving shards hot-swap to it between batches, with prepacked weight
//     panels already warmed so the first post-swap decode pays no packing
//     cost.
//
// Ownership rule: once a tenant is registered here, its OrcoDcsSystem is
// mutated only by trainer threads; serving must go through the registry
// snapshots (register the tenant with a ServerRuntime whose
// ServeConfig::model_registry is this runtime's registry()).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/monitor.h"
#include "core/system.h"
#include "serve/tenant_policy.h"
#include "train/model_registry.h"
#include "train/train_job.h"

namespace orco::train {

struct TrainerConfig {
  /// Background trainer threads. Keep this well below the serving shard
  /// count: a trainer thread runs full protocol rounds and is the main CPU
  /// competitor of the decode path.
  std::size_t worker_threads = 1;
  std::size_t queue_capacity = 16;  // pending jobs; beyond -> kRejected
  TrainBudget default_budget;
  /// Priority/weight ordering of queued jobs (queue_quota is unused here).
  serve::TenantPolicy default_policy;
  /// Epochs a drift-triggered job runs over the tenant's current stream.
  std::size_t drift_epochs = 2;
  /// Microseconds of queue wait that double a pending job's scheduling
  /// score (same aging scheme as serve::BatchQueue; 0 disables aging).
  std::uint64_t aging_us = 100000;
  /// Background scheduling for trainer worker threads (Linux; ignored
  /// elsewhere, 0 disables). The duty cycle bounds *how much* CPU a job
  /// takes; scheduling class bounds *when* — workers move to SCHED_IDLE
  /// (run on idle cycles only, preempted instantly by a waking decode
  /// thread), falling back to this nice level where that fails. This is
  /// what keeps serve tail latency flat on core-starved boxes: a training
  /// round can outlast the whole p99 budget.
  int background_nice = 19;
  /// Run training kernels inline on the worker thread instead of the
  /// shared GEMM pool (tensor::set_thread_gemm_parallelism). Default on:
  /// pooled training GEMM chunks execute at the pool workers' normal
  /// priority and head-of-line-block serve decode batches, defeating both
  /// budgets above. Turn off only for offline bulk training where trainer
  /// throughput matters more than serve tails.
  bool inline_kernels = true;
  /// Publish a snapshot of the tenant's current weights at register_tenant
  /// time, so serving flips to the lock-free registry path immediately.
  bool publish_on_register = true;
  /// Kernel backend published snapshots are pre-warmed (pre-packed) for —
  /// set it to the consuming ServeConfig::backend so the first post-swap
  /// decode pays no packing cost (the pack cache keeps one backend's
  /// panels). Empty: the tenant's own backend, else the process default.
  std::string serve_backend;
};

class TrainerRuntime {
 public:
  explicit TrainerRuntime(const TrainerConfig& config = {});

  /// Calls shutdown(); queued jobs resolve kShutdown.
  ~TrainerRuntime();

  TrainerRuntime(const TrainerRuntime&) = delete;
  TrainerRuntime& operator=(const TrainerRuntime&) = delete;

  /// Registers a tenant under the default policy and budget.
  void register_tenant(ClusterId cluster,
                       std::shared_ptr<core::OrcoDcsSystem> system);
  void register_tenant(ClusterId cluster,
                       std::shared_ptr<core::OrcoDcsSystem> system,
                       const serve::TenantPolicy& policy,
                       const TrainBudget& budget);

  /// Removes a tenant when it is quiescent: no queued job targets it, no
  /// worker is running one, and no drift job is in flight. Returns false
  /// (and changes nothing) otherwise — the caller retries after traffic
  /// drains. The fleet's cold-tier demotion path; callers must not race
  /// submit_job / observe_loss / update_stream for the same tenant with
  /// this call (those assert the tenant exists).
  bool unregister_tenant(ClusterId cluster);

  /// The registry serving shards should read snapshots from (wire it into
  /// ServeConfig::model_registry).
  const std::shared_ptr<ModelRegistry>& registry() const noexcept {
    return registry_;
  }

  /// Queues one fine-tuning job. The future always resolves: kRejected
  /// immediately when the queue is full / the tenant is unknown / the
  /// dataset does not match the tenant's input_dim, kShutdown if the
  /// runtime stops first, otherwise the job's TrainResult.
  std::future<TrainResult> submit_job(ClusterId cluster, data::Dataset dataset,
                                      std::size_t epochs = 1);

  /// Installs the tenant's latest sensed window — the dataset a
  /// drift-triggered job fine-tunes on. Cheap to call repeatedly.
  void update_stream(ClusterId cluster, data::Dataset dataset);

  /// Seeds the tenant's drift monitor baseline (e.g. the post-training
  /// evaluation loss) without running a job. Jobs refresh it automatically.
  void set_baseline(ClusterId cluster, float loss);

  /// Feeds one reconstruction-error observation to the tenant's
  /// FineTuningMonitor (§III-D; thresholds from the tenant's OrcoConfig).
  /// Returns true when drift triggered; if a stream is installed and no
  /// drift job for this tenant is already queued or running, a fine-tune
  /// job over the stream is enqueued automatically. Observations before a
  /// baseline exists are ignored (returns false).
  bool observe_loss(ClusterId cluster, float loss);

  /// Exports the tenant's current weights and publishes them immediately
  /// (no training). Returns the published version.
  std::uint64_t publish_now(ClusterId cluster);

  /// Launches the worker threads. Idempotent until shutdown().
  void start();

  /// Stops intake, resolves still-queued jobs kShutdown, joins workers. The
  /// job currently running finishes its round loop and publishes normally.
  void shutdown();

  bool running() const noexcept { return running_.load(); }
  std::size_t tenant_count() const;
  std::size_t queued_jobs() const;

  struct Stats {
    std::uint64_t jobs_submitted = 0;
    std::uint64_t jobs_rejected = 0;
    std::uint64_t jobs_completed = 0;  // includes kBudgetExhausted/kFailed
    std::uint64_t drift_triggers = 0;
    std::uint64_t rounds_run = 0;
    std::uint64_t snapshots_published = 0;
  };
  Stats stats() const;

 private:
  struct Tenant {
    /// The pointer is set once at registration; the pointed-to system is
    /// mutated only with train_mu held (trainer threads). Lock-free reads
    /// of its immutable config() from caller threads are intentional.
    std::shared_ptr<core::OrcoDcsSystem> system;
    serve::TenantPolicy policy;
    TrainBudget budget;
    /// Guards monitor + stream (fed from caller threads, consumed and
    /// re-baselined from trainer threads).
    common::Mutex monitor_mu;
    /// Serializes jobs per tenant: the tenant's OrcoDcsSystem is
    /// single-writer.
    common::Mutex train_mu;
    core::FineTuningMonitor monitor ORCO_GUARDED_BY(monitor_mu);
    std::shared_ptr<const data::Dataset> stream
        ORCO_GUARDED_BY(monitor_mu);  // latest sensed window
    /// A drift-triggered job is queued or running; suppresses duplicate
    /// auto-enqueues while the relaunch is still in flight.
    std::atomic<bool> drift_job_inflight{false};
    /// Inference memory for the validation/export path (evaluate_loss
    /// sweeps, snapshot warm-up decodes), reused across this tenant's jobs
    /// so repeat fine-tunes stop hammering the allocator.
    nn::InferContext infer_ctx ORCO_GUARDED_BY(train_mu);

    Tenant(std::shared_ptr<core::OrcoDcsSystem> sys,
           const serve::TenantPolicy& pol, const TrainBudget& bud);
  };

  struct PendingJob {
    TrainJob job;
    std::promise<TrainResult> promise;
    std::uint64_t seq = 0;
    std::chrono::steady_clock::time_point queued_at;
  };

  Tenant* find_tenant(ClusterId cluster) const ORCO_EXCLUDES(tenants_mu_);
  std::future<TrainResult> reject(ClusterId cluster, JobOutcome outcome);
  std::future<TrainResult> enqueue(TrainJob&& job);
  /// Highest aged-score pending job; queue non-empty.
  std::size_t pick_job() const ORCO_REQUIRES(mu_);
  void worker_loop();
  TrainResult run_job(const TrainJob& job);
  /// Clones + warms + publishes the tenant's current weights (the
  /// train_mu hold makes this call the only system writer).
  std::uint64_t export_and_publish(ClusterId cluster, Tenant& tenant)
      ORCO_REQUIRES(tenant.train_mu);

  TrainerConfig config_;
  std::shared_ptr<ModelRegistry> registry_;

  mutable common::Mutex tenants_mu_;  // registration vs. lookup only
  std::map<ClusterId, std::unique_ptr<Tenant>> tenants_
      ORCO_GUARDED_BY(tenants_mu_);

  mutable common::Mutex mu_;  // guards the job queue
  std::condition_variable cv_;
  std::deque<PendingJob> queue_ ORCO_GUARDED_BY(mu_);
  /// Jobs popped by a worker and not yet finished, per tenant — the guard
  /// that makes unregister_tenant safe: a tenant with a running job cannot
  /// be erased under the worker. Incremented at pop (same mu_ hold),
  /// decremented when the job's promise resolves.
  std::map<ClusterId, std::size_t> active_jobs_ ORCO_GUARDED_BY(mu_);
  std::uint64_t next_seq_ ORCO_GUARDED_BY(mu_) = 0;
  bool closed_ ORCO_GUARDED_BY(mu_) = false;

  std::vector<std::thread> workers_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopped_{false};

  std::atomic<std::uint64_t> jobs_submitted_{0};
  std::atomic<std::uint64_t> jobs_rejected_{0};
  std::atomic<std::uint64_t> jobs_completed_{0};
  std::atomic<std::uint64_t> drift_triggers_{0};
  std::atomic<std::uint64_t> rounds_run_{0};
};

}  // namespace orco::train
