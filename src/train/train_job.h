// Train-job and budget types for the background fine-tuning runtime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "data/dataset.h"
#include "train/model_registry.h"

namespace orco::train {

/// How much of the box one tenant's fine-tuning may consume. The rounds cap
/// bounds a single job; the duty cycle bounds steady-state CPU share so a
/// fine-tune burst cannot starve the serving shards of cores: after every
/// protocol round the trainer sleeps round_time * (1 - duty) / duty,
/// capping this tenant at `duty_cycle` of one trainer thread.
struct TrainBudget {
  std::size_t max_rounds_per_job = 0;  // 0 = unbounded
  double duty_cycle = 0.5;             // (0, 1]; 1 = no throttling
};

/// One queued fine-tuning request: run `epochs` passes of the §III-B online
/// protocol over `dataset` on the tenant's system, then publish a snapshot.
/// The dataset is shared, not owned: drift-triggered jobs alias the
/// tenant's installed stream so enqueueing a job is O(1) — copying a
/// multi-MB window on the observing (serving-side) thread would stall it
/// exactly when reconstruction quality is degrading.
struct TrainJob {
  ClusterId cluster = 0;
  std::shared_ptr<const data::Dataset> dataset;
  std::size_t epochs = 1;
  /// True for jobs the drift monitor enqueued (vs. explicit submit_job).
  bool drift_triggered = false;
};

enum class JobOutcome {
  kCompleted,        // ran every requested round
  kBudgetExhausted,  // stopped early at the tenant's rounds budget
  kRejected,         // queue full or unknown tenant: nothing ran
  kShutdown,         // runtime stopped before the job ran to completion
  kFailed,           // training threw; see TrainerRuntime logs
};

inline const char* to_string(JobOutcome outcome) {
  switch (outcome) {
    case JobOutcome::kCompleted: return "completed";
    case JobOutcome::kBudgetExhausted: return "budget-exhausted";
    case JobOutcome::kRejected: return "rejected";
    case JobOutcome::kShutdown: return "shutdown";
    case JobOutcome::kFailed: return "failed";
  }
  return "invalid";
}

struct TrainResult {
  ClusterId cluster = 0;
  JobOutcome outcome = JobOutcome::kRejected;
  std::size_t rounds_run = 0;
  float final_loss = 0.0f;  // last round's training loss
  float eval_loss = 0.0f;   // post-job eval on the job dataset (new baseline)
  /// Version installed in the ModelRegistry by this job; 0 when nothing was
  /// published (rejected/shutdown/failed or zero rounds run).
  std::uint64_t published_version = 0;
  double train_seconds = 0.0;     // wall time spent inside training rounds
  double throttle_seconds = 0.0;  // wall time slept for the duty-cycle budget
};

}  // namespace orco::train
