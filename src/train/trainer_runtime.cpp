#include "train/trainer_runtime.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "data/dataloader.h"
#include "obs/config.h"
#include "obs/trace.h"

#ifdef __linux__
#include <sched.h>
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace orco::train {

namespace {

/// Drops the calling thread to background scheduling (no-op off Linux or
/// when nice_level is 0). SCHED_IDLE is the real background class — the
/// thread runs only on otherwise-idle cycles and a waking decode thread
/// preempts it immediately, which is what keeps serve p99 flat while a
/// multi-millisecond training round is in flight on a shared core. Safe
/// here because trainer threads never hold a lock the serve path takes
/// (registry snapshot reads are a single atomic load). Falls back to plain
/// niceness where SCHED_IDLE is unavailable; lowering priority never needs
/// privileges.
void background_current_thread(int nice_level) {
  if (nice_level == 0) return;
#ifdef __linux__
  const sched_param param{};
  if (sched_setscheduler(static_cast<pid_t>(gettid()), SCHED_IDLE, &param) ==
      0) {
    return;
  }
  if (setpriority(PRIO_PROCESS, static_cast<id_t>(gettid()), nice_level) !=
      0) {
    ORCO_LOG_ERROR("could not renice trainer thread to " << nice_level);
  }
#else
  (void)nice_level;
#endif
}

}  // namespace

namespace {

double seconds_since(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

}  // namespace

TrainerRuntime::Tenant::Tenant(std::shared_ptr<core::OrcoDcsSystem> sys,
                               const serve::TenantPolicy& pol,
                               const TrainBudget& bud)
    : system(std::move(sys)),
      policy(pol),
      budget(bud),
      monitor(system->config().orco.relaunch_factor,
              system->config().orco.monitor_window,
              system->config().orco.monitor_cooldown) {}

TrainerRuntime::TrainerRuntime(const TrainerConfig& config)
    : config_(config), registry_(std::make_shared<ModelRegistry>()) {
  ORCO_CHECK(config.worker_threads > 0,
             "TrainerRuntime needs at least one worker thread");
  ORCO_CHECK(config.queue_capacity > 0, "job queue capacity must be positive");
}

TrainerRuntime::~TrainerRuntime() { shutdown(); }

void TrainerRuntime::register_tenant(
    ClusterId cluster, std::shared_ptr<core::OrcoDcsSystem> system) {
  register_tenant(cluster, std::move(system), config_.default_policy,
                  config_.default_budget);
}

void TrainerRuntime::register_tenant(
    ClusterId cluster, std::shared_ptr<core::OrcoDcsSystem> system,
    const serve::TenantPolicy& policy, const TrainBudget& budget) {
  ORCO_CHECK(system != nullptr, "cannot register a null tenant system");
  ORCO_CHECK(budget.duty_cycle > 0.0 && budget.duty_cycle <= 1.0,
             "duty cycle must be in (0, 1], got " << budget.duty_cycle);
  auto tenant = std::make_unique<Tenant>(std::move(system), policy, budget);
  Tenant* inserted = tenant.get();
  {
    common::MutexLock lock(tenants_mu_);
    ORCO_CHECK(tenants_.emplace(cluster, std::move(tenant)).second,
               "tenant " << cluster << " already registered with the trainer");
  }
  if (config_.publish_on_register) {
    common::MutexLock train_lock(inserted->train_mu);
    (void)export_and_publish(cluster, *inserted);
  }
}

bool TrainerRuntime::unregister_tenant(ClusterId cluster) {
  // Lock order mu_ -> tenants_mu_ matches pick_job's (held-mu_) find_tenant
  // calls. Holding mu_ across the erase pins the invariant: no worker can
  // pop a job for the tenant between our scan and the erase.
  common::MutexLock lock(mu_);
  if (active_jobs_.count(cluster) > 0) return false;
  for (const auto& pending : queue_) {
    if (pending.job.cluster == cluster) return false;
  }
  common::MutexLock tenants_lock(tenants_mu_);
  const auto it = tenants_.find(cluster);
  if (it == tenants_.end()) return false;
  // A drift trigger may have armed the flag but not enqueued yet (the
  // window between monitor_mu release and enqueue); refuse until it lands.
  if (it->second->drift_job_inflight.load()) return false;
  tenants_.erase(it);
  return true;
}

TrainerRuntime::Tenant* TrainerRuntime::find_tenant(ClusterId cluster) const {
  common::MutexLock lock(tenants_mu_);
  const auto it = tenants_.find(cluster);
  return it == tenants_.end() ? nullptr : it->second.get();
}

std::future<TrainResult> TrainerRuntime::reject(ClusterId cluster,
                                                JobOutcome outcome) {
  std::promise<TrainResult> promise;
  std::future<TrainResult> future = promise.get_future();
  TrainResult result;
  result.cluster = cluster;
  result.outcome = outcome;
  if (outcome == JobOutcome::kRejected) {
    jobs_rejected_.fetch_add(1, std::memory_order_relaxed);
  }
  promise.set_value(std::move(result));
  return future;
}

std::future<TrainResult> TrainerRuntime::enqueue(TrainJob&& job) {
  PendingJob pending;
  pending.job = std::move(job);
  pending.queued_at = std::chrono::steady_clock::now();
  std::future<TrainResult> future = pending.promise.get_future();
  {
    common::MutexLock lock(mu_);
    if (closed_) {
      TrainResult result;
      result.cluster = pending.job.cluster;
      result.outcome = JobOutcome::kShutdown;
      pending.promise.set_value(std::move(result));
      return future;
    }
    if (queue_.size() >= config_.queue_capacity) {
      TrainResult result;
      result.cluster = pending.job.cluster;
      result.outcome = JobOutcome::kRejected;
      jobs_rejected_.fetch_add(1, std::memory_order_relaxed);
      pending.promise.set_value(std::move(result));
      return future;
    }
    pending.seq = next_seq_++;
    queue_.push_back(std::move(pending));
    jobs_submitted_.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.notify_one();
  return future;
}

std::future<TrainResult> TrainerRuntime::submit_job(ClusterId cluster,
                                                    data::Dataset dataset,
                                                    std::size_t epochs) {
  const Tenant* tenant = find_tenant(cluster);
  if (tenant == nullptr || epochs == 0 || dataset.size() == 0 ||
      dataset.geometry().features() !=
          tenant->system->config().orco.input_dim) {
    return reject(cluster, JobOutcome::kRejected);
  }
  TrainJob job;
  job.cluster = cluster;
  job.dataset = std::make_shared<const data::Dataset>(std::move(dataset));
  job.epochs = epochs;
  return enqueue(std::move(job));
}

void TrainerRuntime::update_stream(ClusterId cluster, data::Dataset dataset) {
  Tenant* tenant = find_tenant(cluster);
  ORCO_CHECK(tenant != nullptr, "unknown tenant " << cluster);
  ORCO_CHECK(dataset.size() > 0 &&
                 dataset.geometry().features() ==
                     tenant->system->config().orco.input_dim,
             "stream for tenant " << cluster
                                  << " does not match its input_dim");
  auto shared = std::make_shared<const data::Dataset>(std::move(dataset));
  common::MutexLock lock(tenant->monitor_mu);
  tenant->stream = std::move(shared);
}

void TrainerRuntime::set_baseline(ClusterId cluster, float loss) {
  Tenant* tenant = find_tenant(cluster);
  ORCO_CHECK(tenant != nullptr, "unknown tenant " << cluster);
  common::MutexLock lock(tenant->monitor_mu);
  tenant->monitor.set_baseline(loss);
  tenant->monitor.reset_observations();
}

bool TrainerRuntime::observe_loss(ClusterId cluster, float loss) {
  Tenant* tenant = find_tenant(cluster);
  ORCO_CHECK(tenant != nullptr, "unknown tenant " << cluster);
  bool triggered = false;
  std::optional<TrainJob> auto_job;
  {
    common::MutexLock lock(tenant->monitor_mu);
    if (!tenant->monitor.has_baseline()) return false;
    triggered = tenant->monitor.observe(loss);
    if (triggered) {
      drift_triggers_.fetch_add(1, std::memory_order_relaxed);
      if (tenant->stream != nullptr &&
          !tenant->drift_job_inflight.exchange(true)) {
        TrainJob job;
        job.cluster = cluster;
        job.dataset = tenant->stream;  // aliased, not copied: O(1) trigger
        job.epochs = std::max<std::size_t>(1, config_.drift_epochs);
        job.drift_triggered = true;
        auto_job = std::move(job);
      }
    }
  }
  if (auto_job.has_value()) {
    std::future<TrainResult> future = enqueue(std::move(*auto_job));
    // Re-arm only when the queue actually refused the job (full/closed).
    // Readiness alone is not refusal: a fast worker can have completed the
    // job already — clearing the flag then would cancel the suppression a
    // *newer* in-flight drift job re-armed, letting duplicates pile up.
    if (future.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      const TrainResult result = future.get();
      if (result.outcome == JobOutcome::kRejected ||
          result.outcome == JobOutcome::kShutdown) {
        tenant->drift_job_inflight.store(false);
      }
    }
  }
  return triggered;
}

std::uint64_t TrainerRuntime::publish_now(ClusterId cluster) {
  Tenant* tenant = find_tenant(cluster);
  ORCO_CHECK(tenant != nullptr, "unknown tenant " << cluster);
  common::MutexLock train_lock(tenant->train_mu);
  return export_and_publish(cluster, *tenant);
}

std::uint64_t TrainerRuntime::export_and_publish(ClusterId cluster,
                                                 Tenant& tenant) {
  // Publishes are rare (one per completed job) — trace every one so a
  // hot-swap window is findable in the timeline without sampling luck.
  obs::ScopedSpan span("train.publish", "train", obs::trace_enabled(),
                       /*id=*/0, /*tenant=*/cluster);
  core::OrcoDcsSystem& system = *tenant.system;
  const core::OrcoConfig& orco = system.config().orco;
  auto snapshot = std::make_shared<ModelSnapshot>();
  snapshot->version = system.edge().model_version();
  const auto current = registry_->current(cluster);
  if (current != nullptr && current->version >= snapshot->version) {
    // Nothing trained since the last publish (e.g. a zero-round job):
    // re-publishing the same generation would only churn caches.
    return 0;
  }
  std::unique_ptr<nn::Sequential> decoder = system.export_decoder_clone();
  if (orco.prepack_decoder) decoder->set_weight_prepack(true);
  snapshot->decoder =
      std::shared_ptr<const nn::Sequential>(std::move(decoder));
  {
    // Compile the snapshot's inference plan before the swap, under the
    // backend the serving shards will decode on — packing the decoder
    // weights at publish time, so the first post-swap decode pays no
    // packing cost (repacking inline on the serve path is a tail-latency
    // spike exactly at the swap edge). Precedence mirrors serve_batch's
    // scope nesting (most specific wins): the tenant's own backend
    // overrides the shard-level one, which overrides the process default.
    const tensor::Backend* warm = system.edge().backend();
    if (warm == nullptr) warm = tensor::resolve_backend(config_.serve_backend);
    snapshot->plan = nn::InferPlan::compile(*snapshot->decoder, warm);
    // One 1-row pass warms the plan's arena reservation and the context
    // buffers that post-swap decodes will reuse.
    tensor::BackendScope scope(warm);
    const tensor::Tensor warm_latent({1, orco.latent_dim});
    tensor::Tensor warm_out;
    snapshot->plan->run(warm_latent, warm_out, tenant.infer_ctx);
  }
  snapshot->encoder =
      std::shared_ptr<const nn::Sequential>(system.export_encoder_clone());
  snapshot->latent_dim = orco.latent_dim;
  snapshot->output_dim = orco.input_dim;
  snapshot->backend = system.edge().backend();
  return registry_->publish(cluster, std::move(snapshot));
}

std::size_t TrainerRuntime::pick_job() const {
  // Aged weighted priority, same scheme as serve::BatchQueue::pick_cluster:
  // score = schedule_weight x (1 + wait / aging_us), FIFO on ties.
  const auto now = std::chrono::steady_clock::now();
  std::size_t best = 0;
  double best_score = -1.0;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Tenant* tenant = find_tenant(queue_[i].job.cluster);
    const serve::TenantPolicy policy =
        tenant != nullptr ? tenant->policy : config_.default_policy;
    double score = policy.schedule_weight();
    if (config_.aging_us > 0) {
      const double wait_us = std::chrono::duration<double, std::micro>(
                                 now - queue_[i].queued_at)
                                 .count();
      score *= 1.0 + wait_us / static_cast<double>(config_.aging_us);
    }
    if (score > best_score ||
        (score == best_score && queue_[i].seq < queue_[best].seq)) {
      best = i;
      best_score = score;
    }
  }
  return best;
}

void TrainerRuntime::worker_loop() {
  background_current_thread(config_.background_nice);
  if (config_.inline_kernels) tensor::set_thread_gemm_parallelism(false);
  for (;;) {
    PendingJob pending;
    {
      common::MutexLock lock(mu_);
      while (!closed_ && queue_.empty()) cv_.wait(lock.native());
      if (closed_) return;  // still-queued jobs are resolved by shutdown()
      const std::size_t i = pick_job();
      pending = std::move(queue_[i]);
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
      // Marked active under the same lock hold that popped it, so
      // unregister_tenant can never observe the job in neither the queue
      // nor the active set.
      ++active_jobs_[pending.job.cluster];
    }
    TrainResult result = run_job(pending.job);
    pending.promise.set_value(std::move(result));
    {
      common::MutexLock lock(mu_);
      const auto it = active_jobs_.find(pending.job.cluster);
      if (it != active_jobs_.end() && --it->second == 0) {
        active_jobs_.erase(it);
      }
    }
  }
}

TrainResult TrainerRuntime::run_job(const TrainJob& job) {
  TrainResult result;
  result.cluster = job.cluster;
  Tenant* tenant = find_tenant(job.cluster);
  if (tenant == nullptr || job.dataset == nullptr) {
    result.outcome = JobOutcome::kRejected;
    return result;
  }
  common::MutexLock train_lock(tenant->train_mu);
  const bool traced = obs::trace_enabled();
  obs::ScopedSpan job_span("train.job", "train", traced, /*id=*/0,
                           /*tenant=*/job.cluster);
  core::OrcoDcsSystem& system = *tenant->system;
  const core::OrcoConfig& orco = system.config().orco;
  const std::size_t max_rounds = tenant->budget.max_rounds_per_job;
  const double duty = tenant->budget.duty_cycle;

  // Salt the shuffle with rounds_completed like train_online: repeated jobs
  // see fresh sample orders, deterministically.
  common::Pcg32 loader_rng(orco.seed ^
                           (0x7261696eULL +
                            system.orchestrator().rounds_completed()));
  const data::Dataset& dataset = *job.dataset;
  data::DataLoader loader(dataset, orco.batch_size, /*shuffle=*/true,
                          loader_rng);
  result.outcome = JobOutcome::kCompleted;
  bool capped = false;
  try {
    for (std::size_t epoch = 0; epoch < job.epochs && !capped; ++epoch) {
      loader.reshuffle();
      for (std::size_t b = 0; b < loader.batch_count() && !capped; ++b) {
        const auto round_start = std::chrono::steady_clock::now();
        core::RoundRecord record;
        {
          obs::ScopedSpan round_span("train.round", "train", traced,
                                     /*id=*/0, /*tenant=*/job.cluster,
                                     /*n=*/result.rounds_run + 1);
          record = system.orchestrator().train_round(loader.batch(b).images);
        }
        result.final_loss = record.loss;
        ++result.rounds_run;
        rounds_run_.fetch_add(1, std::memory_order_relaxed);
        const double round_s = seconds_since(round_start);
        result.train_seconds += round_s;
        if (max_rounds > 0 && result.rounds_run >= max_rounds) {
          capped = true;
          break;
        }
        if (duty < 1.0) {
          // Duty-cycle budget: sleeping (1 - duty)/duty of each round's
          // wall time caps this job at `duty` of one trainer thread, so
          // serving shards keep their cores under sustained fine-tuning.
          const double sleep_s = round_s * (1.0 - duty) / duty;
          result.throttle_seconds += sleep_s;
          std::this_thread::sleep_for(std::chrono::duration<double>(sleep_s));
        }
      }
    }
  } catch (const std::exception& e) {
    ORCO_LOG_ERROR("fine-tune job for tenant " << job.cluster
                                               << " failed: " << e.what());
    result.outcome = JobOutcome::kFailed;
  }
  if (capped) result.outcome = JobOutcome::kBudgetExhausted;

  if (result.rounds_run > 0 && result.outcome != JobOutcome::kFailed) {
    try {
      // The clean eval loss on the data just trained on is the §III-D
      // baseline for the next drift watch (same rule as train_online). The
      // decode half of the sweep runs through the tenant's reusable
      // context (we hold train_mu, so the context is ours).
      {
        obs::ScopedSpan eval_span("train.eval", "train", traced, /*id=*/0,
                                  /*tenant=*/job.cluster);
        result.eval_loss = system.evaluate_loss(dataset, tenant->infer_ctx);
      }
      {
        common::MutexLock lock(tenant->monitor_mu);
        tenant->monitor.set_baseline(result.eval_loss);
        tenant->monitor.reset_observations();
      }
      result.published_version = export_and_publish(job.cluster, *tenant);
    } catch (const std::exception& e) {
      ORCO_LOG_ERROR("publishing tenant " << job.cluster
                                          << " snapshot failed: " << e.what());
      result.outcome = JobOutcome::kFailed;
    }
  }
  if (job.drift_triggered) tenant->drift_job_inflight.store(false);
  jobs_completed_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

void TrainerRuntime::start() {
  ORCO_CHECK(!stopped_.load(), "cannot restart a shut-down TrainerRuntime");
  if (running_.exchange(true)) return;
  workers_.reserve(config_.worker_threads);
  for (std::size_t i = 0; i < config_.worker_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void TrainerRuntime::shutdown() {
  if (stopped_.exchange(true)) return;
  {
    common::MutexLock lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  running_.store(false);
  // Resolve whatever never ran; callers' futures must not dangle.
  std::deque<PendingJob> leftover;
  {
    common::MutexLock lock(mu_);
    leftover.swap(queue_);
  }
  for (auto& pending : leftover) {
    TrainResult result;
    result.cluster = pending.job.cluster;
    result.outcome = JobOutcome::kShutdown;
    pending.promise.set_value(std::move(result));
  }
}

std::size_t TrainerRuntime::tenant_count() const {
  common::MutexLock lock(tenants_mu_);
  return tenants_.size();
}

std::size_t TrainerRuntime::queued_jobs() const {
  common::MutexLock lock(mu_);
  return queue_.size();
}

TrainerRuntime::Stats TrainerRuntime::stats() const {
  Stats s;
  s.jobs_submitted = jobs_submitted_.load(std::memory_order_relaxed);
  s.jobs_rejected = jobs_rejected_.load(std::memory_order_relaxed);
  s.jobs_completed = jobs_completed_.load(std::memory_order_relaxed);
  s.drift_triggers = drift_triggers_.load(std::memory_order_relaxed);
  s.rounds_run = rounds_run_.load(std::memory_order_relaxed);
  s.snapshots_published = registry_->total_published();
  return s;
}

}  // namespace orco::train
