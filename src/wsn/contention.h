// Medium-contention model backing the paper's §III-A claim that tree-based
// aggregation "mitigates collisions, thereby enhancing network efficiency".
//
// Slotted-ALOHA-style analysis: k nodes contending for the same slot each
// transmit with probability p; a slot succeeds when exactly one transmits.
// Star topologies put all N devices in one contention domain; the
// aggregation tree spreads transmissions across levels, so each domain
// holds only the children of one parent.
#pragma once

#include <cstddef>

#include "wsn/aggregation_tree.h"

namespace orco::wsn {

struct ContentionReport {
  double success_probability = 0.0;   // per-slot success with optimal p
  double expected_slots_per_packet = 0.0;  // 1 / success_probability
  std::size_t largest_domain = 0;     // max simultaneous contenders
};

/// Per-slot success probability for k contenders transmitting with the
/// optimal probability p = 1/k: k * p * (1-p)^(k-1). k=0 -> 1, k=1 -> 1.
double slotted_success_probability(std::size_t contenders);

/// Contention when every device talks straight to the aggregator (star):
/// one domain with all devices.
ContentionReport star_contention(std::size_t devices);

/// Contention over the aggregation tree: each parent's children form one
/// domain; domains at the same depth are assumed spatially separated
/// enough to proceed in parallel, so the binding constraint is the largest
/// sibling group. Expected slots aggregates level by level.
ContentionReport tree_contention(const AggregationTree& tree);

}  // namespace orco::wsn
