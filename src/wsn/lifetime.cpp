#include "wsn/lifetime.h"

#include <limits>

#include "common/check.h"

namespace orco::wsn {

LifetimeReport estimate_lifetime(const Field& field,
                                 const std::vector<double>& node_energy_j,
                                 double battery_j) {
  ORCO_CHECK(node_energy_j.size() == field.node_count(),
             "energy profile size " << node_energy_j.size()
                                    << " vs node count "
                                    << field.node_count());
  ORCO_CHECK(battery_j > 0.0, "battery budget must be positive");

  LifetimeReport report;
  double max_energy = 0.0;
  double sum_energy = 0.0;
  std::size_t devices = 0;
  for (NodeId id = 0; id < node_energy_j.size(); ++id) {
    if (id == field.aggregator()) continue;
    ORCO_CHECK(node_energy_j[id] >= 0.0, "negative node energy");
    ++devices;
    sum_energy += node_energy_j[id];
    if (node_energy_j[id] > max_energy) {
      max_energy = node_energy_j[id];
      report.first_dead_node = id;
    }
  }
  ORCO_ENSURE(devices > 0, "no devices in field");
  report.max_device_energy_per_round_j = max_energy;
  report.mean_device_energy_per_round_j =
      sum_energy / static_cast<double>(devices);
  report.rounds_until_first_death =
      max_energy > 0.0 ? battery_j / max_energy
                       : std::numeric_limits<double>::infinity();
  return report;
}

}  // namespace orco::wsn
