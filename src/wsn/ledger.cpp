#include "wsn/ledger.h"

#include <sstream>

#include "common/check.h"

namespace orco::wsn {

const char* link_kind_name(LinkKind kind) {
  switch (kind) {
    case LinkKind::kIntraCluster: return "intra-cluster";
    case LinkKind::kUplink:       return "uplink";
    case LinkKind::kDownlink:     return "downlink";
    case LinkKind::kBroadcast:    return "broadcast";
  }
  return "?";
}

void TransmissionLedger::record(LinkKind kind, std::size_t payload_bytes,
                                std::size_t wire_bytes, std::size_t packets,
                                double energy_j, double airtime_s) {
  ORCO_CHECK(wire_bytes >= payload_bytes,
             "wire bytes below payload: " << wire_bytes << " < "
                                          << payload_bytes);
  ORCO_CHECK(energy_j >= 0.0 && airtime_s >= 0.0,
             "negative energy or airtime");
  auto& t = totals_.at(static_cast<std::size_t>(kind));
  t.payload_bytes += payload_bytes;
  t.wire_bytes += wire_bytes;
  t.packets += packets;
  t.messages += 1;
  t.energy_j += energy_j;
  t.airtime_s += airtime_s;
}

const LinkTotals& TransmissionLedger::totals(LinkKind kind) const {
  return totals_.at(static_cast<std::size_t>(kind));
}

LinkTotals TransmissionLedger::grand_total() const {
  LinkTotals sum;
  for (const auto& t : totals_) {
    sum.payload_bytes += t.payload_bytes;
    sum.wire_bytes += t.wire_bytes;
    sum.packets += t.packets;
    sum.messages += t.messages;
    sum.energy_j += t.energy_j;
    sum.airtime_s += t.airtime_s;
  }
  return sum;
}

double TransmissionLedger::total_airtime() const {
  return grand_total().airtime_s;
}

void TransmissionLedger::reset() { totals_ = {}; }

std::string TransmissionLedger::summary() const {
  std::ostringstream os;
  for (std::size_t k = 0; k < kLinkKindCount; ++k) {
    const auto& t = totals_[k];
    if (t.messages == 0) continue;
    os << link_kind_name(static_cast<LinkKind>(k)) << ": "
       << t.payload_bytes / 1024 << " KB payload, " << t.wire_bytes / 1024
       << " KB wire, " << t.packets << " pkts, " << t.energy_j << " J, "
       << t.airtime_s << " s; ";
  }
  return os.str();
}

}  // namespace orco::wsn
