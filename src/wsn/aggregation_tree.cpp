#include "wsn/aggregation_tree.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/check.h"

namespace orco::wsn {

AggregationTree::AggregationTree(const Field& field, const RadioModel& radio)
    : field_(&field), radio_(radio), root_(field.aggregator()) {
  const std::size_t n = field.node_count();
  parent_.assign(n, root_);
  depth_.assign(n, 0);
  children_.assign(n, {});

  // Dijkstra from the root over energy-weighted in-range links. Edge weight
  // approximates per-bit transmit energy so the tree minimises the energy a
  // reading spends travelling to the aggregator.
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  std::vector<bool> done(n, false);
  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[root_] = 0.0;
  heap.emplace(0.0, root_);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (done[u]) continue;
    done[u] = true;
    for (NodeId v = 0; v < n; ++v) {
      if (v == u || done[v] || !field.in_range(u, v)) continue;
      const double w = radio_.tx_energy(1, field.link_distance(u, v));
      if (dist[u] + w < dist[v]) {
        dist[v] = dist[u] + w;
        parent_[v] = u;
        heap.emplace(dist[v], v);
      }
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    ORCO_CHECK(done[v], "node " << v
                                << " cannot reach the aggregator; increase "
                                   "radio range or shrink the field");
  }

  for (NodeId v = 0; v < n; ++v) {
    if (v == root_) continue;
    children_[parent_[v]].push_back(v);
  }

  // Depths and a bottom-up order via BFS from the root.
  std::vector<NodeId> top_down;
  top_down.reserve(n);
  std::queue<NodeId> queue;
  queue.push(root_);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    top_down.push_back(u);
    for (const NodeId c : children_[u]) {
      depth_[c] = depth_[u] + 1;
      queue.push(c);
    }
  }
  ORCO_ENSURE(top_down.size() == n, "tree does not span all nodes");
  bottom_up_.assign(top_down.rbegin(), top_down.rend());

  // Subtree sizes in device count (the root itself is not a device).
  subtree_size_.assign(n, 0);
  for (const NodeId u : bottom_up_) {
    std::size_t size = (u == root_) ? 0 : 1;
    for (const NodeId c : children_[u]) size += subtree_size_[c];
    subtree_size_[u] = size;
  }
}

NodeId AggregationTree::parent(NodeId id) const {
  ORCO_CHECK(id < parent_.size(), "node id out of range");
  return parent_[id];
}

const std::vector<NodeId>& AggregationTree::children(NodeId id) const {
  ORCO_CHECK(id < children_.size(), "node id out of range");
  return children_[id];
}

std::size_t AggregationTree::depth(NodeId id) const {
  ORCO_CHECK(id < depth_.size(), "node id out of range");
  return depth_[id];
}

std::size_t AggregationTree::subtree_size(NodeId id) const {
  ORCO_CHECK(id < subtree_size_.size(), "node id out of range");
  return subtree_size_[id];
}

std::size_t AggregationTree::max_depth() const {
  return *std::max_element(depth_.begin(), depth_.end());
}

void AggregationTree::record_hop(NodeId from, NodeId to,
                                 std::size_t payload_bytes, LinkKind kind,
                                 TransmissionLedger& ledger,
                                 RoundStats& stats) const {
  const double d = field_->link_distance(from, to);
  const double tx = radio_.tx_energy(payload_bytes, d);
  const double rx = radio_.rx_energy(payload_bytes);
  const double airtime = radio_.airtime(payload_bytes);
  ledger.record(kind, payload_bytes, radio_.wire_bytes(payload_bytes),
                radio_.packets_for(payload_bytes), tx + rx, airtime);
  stats.payload_bytes += payload_bytes;
  stats.energy_j += tx + rx;
  stats.airtime_s += airtime;
  stats.node_energy_j[from] += tx;
  stats.node_energy_j[to] += rx;
}

RoundStats AggregationTree::simulate_raw_round(
    std::size_t bytes_per_reading, TransmissionLedger& ledger) const {
  RoundStats stats;
  stats.node_energy_j.assign(field_->node_count(), 0.0);
  // Bottom-up: each non-root node forwards its whole subtree's readings.
  for (const NodeId u : bottom_up_) {
    if (u == root_) continue;
    const std::size_t readings = subtree_size_[u];
    record_hop(u, parent_[u], readings * bytes_per_reading,
               LinkKind::kIntraCluster, ledger, stats);
  }
  return stats;
}

RoundStats AggregationTree::simulate_hybrid_cs_round(
    std::size_t m_values, std::size_t bytes_per_value,
    TransmissionLedger& ledger) const {
  ORCO_CHECK(m_values > 0, "latent dimension must be positive");
  RoundStats stats;
  stats.node_energy_j.assign(field_->node_count(), 0.0);
  // Hybrid rule [1]: forward raw readings while the subtree holds fewer
  // than M of them; switch to the fixed M-dimensional compressed partial
  // once the subtree reaches M readings.
  for (const NodeId u : bottom_up_) {
    if (u == root_) continue;
    const std::size_t readings = subtree_size_[u];
    const std::size_t values = std::min(readings, m_values);
    record_hop(u, parent_[u], values * bytes_per_value,
               LinkKind::kIntraCluster, ledger, stats);
  }
  return stats;
}

RoundStats AggregationTree::simulate_broadcast(
    std::size_t bytes, TransmissionLedger& ledger) const {
  RoundStats stats;
  stats.node_energy_j.assign(field_->node_count(), 0.0);
  // Every internal node retransmits the broadcast once; every device
  // receives it once. Model: one tx per node that has children, plus rx
  // energy at each device, all at kBroadcast.
  for (NodeId u = 0; u < field_->node_count(); ++u) {
    if (children_[u].empty()) continue;
    // Farthest child bounds the required tx power.
    double dmax = 0.0;
    for (const NodeId c : children_[u]) {
      dmax = std::max(dmax, field_->link_distance(u, c));
    }
    const double tx = radio_.tx_energy(bytes, dmax);
    const double rx = radio_.rx_energy(bytes);
    const double energy =
        tx + static_cast<double>(children_[u].size()) * rx;
    const double airtime = radio_.airtime(bytes);
    ledger.record(LinkKind::kBroadcast, bytes, radio_.wire_bytes(bytes),
                  radio_.packets_for(bytes), energy, airtime);
    stats.payload_bytes += bytes;
    stats.energy_j += energy;
    stats.airtime_s += airtime;
    stats.node_energy_j[u] += tx;
    for (const NodeId c : children_[u]) stats.node_energy_j[c] += rx;
  }
  return stats;
}

}  // namespace orco::wsn
