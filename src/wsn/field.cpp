#include "wsn/field.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace orco::wsn {

Field::Field(const FieldConfig& config) : config_(config) {
  ORCO_CHECK(config.device_count > 0, "need at least one device");
  ORCO_CHECK(config.side_m > 0.0, "field side must be positive");
  ORCO_CHECK(config.radio_range_m > 0.0, "radio range must be positive");

  common::Pcg32 rng(config.seed, /*stream=*/0x6669656cU);  // "fiel"
  positions_.reserve(config.device_count + 1);
  for (std::size_t i = 0; i < config.device_count + 1; ++i) {
    positions_.push_back(Position{
        rng.uniform(0.0f, static_cast<float>(config.side_m)),
        rng.uniform(0.0f, static_cast<float>(config.side_m)),
    });
  }

  // Aggregator: node closest to the centroid.
  Position centroid{0.0, 0.0};
  for (const auto& p : positions_) {
    centroid.x += p.x;
    centroid.y += p.y;
  }
  centroid.x /= static_cast<double>(positions_.size());
  centroid.y /= static_cast<double>(positions_.size());

  double best = std::numeric_limits<double>::max();
  for (NodeId i = 0; i < positions_.size(); ++i) {
    const double d = distance(positions_[i], centroid);
    if (d < best) {
      best = d;
      aggregator_ = i;
    }
  }
}

Field::Field(std::vector<Position> positions, NodeId aggregator,
             double radio_range_m)
    : positions_(std::move(positions)), aggregator_(aggregator) {
  ORCO_CHECK(positions_.size() >= 2, "need an aggregator and a device");
  ORCO_CHECK(aggregator < positions_.size(), "aggregator id out of range");
  ORCO_CHECK(radio_range_m > 0.0, "radio range must be positive");
  double side = 0.0;
  for (const auto& p : positions_) {
    ORCO_CHECK(p.x >= 0.0 && p.y >= 0.0, "positions must be non-negative");
    side = std::max({side, p.x, p.y});
  }
  config_.device_count = positions_.size() - 1;
  config_.side_m = std::max(side, 1.0);
  config_.radio_range_m = radio_range_m;
}

const Position& Field::position(NodeId id) const {
  ORCO_CHECK(id < positions_.size(), "node id out of range");
  return positions_[id];
}

double Field::link_distance(NodeId a, NodeId b) const {
  return distance(position(a), position(b));
}

bool Field::in_range(NodeId a, NodeId b) const {
  return link_distance(a, b) <= config_.radio_range_m + 1e-9;
}

}  // namespace orco::wsn
