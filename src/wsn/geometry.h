// Planar geometry for node deployments.
#pragma once

#include <cmath>
#include <cstddef>

namespace orco::wsn {

struct Position {
  double x = 0.0;
  double y = 0.0;
};

inline double distance(const Position& a, const Position& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

/// Index of a node within its deployment.
using NodeId = std::size_t;

}  // namespace orco::wsn
