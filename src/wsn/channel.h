// Aggregator <-> edge-server link with asymmetric bandwidth.
//
// Per the paper's overhead analysis (§III-E), downlink (edge -> aggregator)
// is considerably cheaper than uplink, so the two directions carry separate
// bandwidths. Every protocol message the orchestrator sends flows through
// send(), which charges the ledger and advances the simulated clock.
#pragma once

#include <cstddef>

#include "wsn/ledger.h"

namespace orco::wsn {

struct ChannelConfig {
  double uplink_bps = 2e6;     // constrained backhaul from the aggregator
  double downlink_bps = 20e6;  // edge server's downlink is ~10x faster
  double latency_s = 2e-3;     // per-message propagation + queuing
  std::size_t header_bytes = 40;      // IP/UDP style overhead per packet
  std::size_t mtu_payload_bytes = 1400;
};

enum class Direction { kUp, kDown };

class Channel {
 public:
  explicit Channel(const ChannelConfig& config);

  /// Transfers `payload_bytes` in the given direction: records the message
  /// to `ledger` and returns the simulated transfer time in seconds.
  double send(std::size_t payload_bytes, Direction direction,
              TransmissionLedger& ledger);

  const ChannelConfig& config() const noexcept { return config_; }

  std::size_t packets_for(std::size_t payload_bytes) const;
  std::size_t wire_bytes(std::size_t payload_bytes) const;

 private:
  ChannelConfig config_;
};

/// Simulated wall clock accumulating compute and communication time.
class SimClock {
 public:
  void advance(double seconds);
  double now() const noexcept { return now_s_; }
  void reset() { now_s_ = 0.0; }

 private:
  double now_s_ = 0.0;
};

}  // namespace orco::wsn
