#include "wsn/channel.h"

#include "common/check.h"

namespace orco::wsn {

Channel::Channel(const ChannelConfig& config) : config_(config) {
  ORCO_CHECK(config.uplink_bps > 0.0 && config.downlink_bps > 0.0,
             "channel bandwidth must be positive");
  ORCO_CHECK(config.latency_s >= 0.0, "negative latency");
  ORCO_CHECK(config.mtu_payload_bytes > 0, "MTU must be positive");
}

std::size_t Channel::packets_for(std::size_t payload_bytes) const {
  if (payload_bytes == 0) return 1;  // control message still costs a packet
  return (payload_bytes + config_.mtu_payload_bytes - 1) /
         config_.mtu_payload_bytes;
}

std::size_t Channel::wire_bytes(std::size_t payload_bytes) const {
  return payload_bytes + packets_for(payload_bytes) * config_.header_bytes;
}

double Channel::send(std::size_t payload_bytes, Direction direction,
                     TransmissionLedger& ledger) {
  const std::size_t wire = wire_bytes(payload_bytes);
  const double bps = direction == Direction::kUp ? config_.uplink_bps
                                                 : config_.downlink_bps;
  const double seconds =
      config_.latency_s + static_cast<double>(wire) * 8.0 / bps;
  ledger.record(direction == Direction::kUp ? LinkKind::kUplink
                                            : LinkKind::kDownlink,
                payload_bytes, wire, packets_for(payload_bytes),
                /*energy_j=*/0.0, seconds);
  return seconds;
}

void SimClock::advance(double seconds) {
  ORCO_CHECK(seconds >= 0.0, "cannot rewind the clock");
  now_s_ += seconds;
}

}  // namespace orco::wsn
