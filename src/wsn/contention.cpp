#include "wsn/contention.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace orco::wsn {

double slotted_success_probability(std::size_t contenders) {
  if (contenders <= 1) return 1.0;
  const double k = static_cast<double>(contenders);
  const double p = 1.0 / k;
  return k * p * std::pow(1.0 - p, k - 1.0);
}

ContentionReport star_contention(std::size_t devices) {
  ORCO_CHECK(devices > 0, "star needs at least one device");
  ContentionReport report;
  report.largest_domain = devices;
  report.success_probability = slotted_success_probability(devices);
  report.expected_slots_per_packet = 1.0 / report.success_probability;
  return report;
}

ContentionReport tree_contention(const AggregationTree& tree) {
  ContentionReport report;
  report.success_probability = 1.0;
  report.expected_slots_per_packet = 0.0;

  // Group sibling sets by depth; the largest sibling group at each level
  // bounds that level's contention.
  const std::size_t nodes = tree.bottom_up_order().size();
  std::size_t max_depth = tree.max_depth();
  for (std::size_t level = 0; level < max_depth; ++level) {
    std::size_t worst_siblings = 0;
    for (NodeId u = 0; u < nodes; ++u) {
      if (tree.depth(u) != level) continue;
      worst_siblings = std::max(worst_siblings, tree.children(u).size());
    }
    if (worst_siblings == 0) continue;
    const double success = slotted_success_probability(worst_siblings);
    report.success_probability =
        std::min(report.success_probability, success);
    report.expected_slots_per_packet += 1.0 / success;
    report.largest_domain = std::max(report.largest_domain, worst_siblings);
  }
  if (report.expected_slots_per_packet == 0.0) {
    report.expected_slots_per_packet = 1.0;
  }
  return report;
}

}  // namespace orco::wsn
