// Network-lifetime estimation from per-node, per-round energy profiles.
//
// The classic WSN metric: with a fixed battery budget per device, how many
// sensing rounds until the first node dies? Hybrid CS aggregation caps the
// per-hop payload near the root, which is exactly where raw aggregation
// drains relay nodes fastest — this module quantifies that benefit.
#pragma once

#include <vector>

#include "wsn/aggregation_tree.h"

namespace orco::wsn {

struct LifetimeReport {
  /// Rounds until the first device exhausts its battery (the aggregator is
  /// assumed mains-/solar-backed and excluded, per common practice).
  double rounds_until_first_death = 0.0;
  NodeId first_dead_node = 0;
  double max_device_energy_per_round_j = 0.0;
  double mean_device_energy_per_round_j = 0.0;
};

/// Computes lifetime for devices with `battery_j` joules each, given one
/// round's per-node energy profile (RoundStats::node_energy_j).
LifetimeReport estimate_lifetime(const Field& field,
                                 const std::vector<double>& node_energy_j,
                                 double battery_j);

}  // namespace orco::wsn
