// Node deployment: N IoT devices placed uniformly at random in a square
// field, plus a data aggregator. Following the cluster-head literature the
// paper cites [18]-[20], the aggregator is the node closest to the cluster
// centroid (minimising intra-cluster distances).
#pragma once

#include <vector>

#include "common/rng.h"
#include "wsn/geometry.h"

namespace orco::wsn {

struct FieldConfig {
  std::size_t device_count = 32;
  double side_m = 100.0;       // square field side length
  double radio_range_m = 40.0; // max single-hop distance
  std::uint64_t seed = 7;
};

class Field {
 public:
  explicit Field(const FieldConfig& config);

  /// Builds a field from explicit positions (tests and topology studies).
  /// `positions[aggregator]` is the aggregator; the rest are devices.
  Field(std::vector<Position> positions, NodeId aggregator,
        double radio_range_m);

  std::size_t device_count() const noexcept { return positions_.size() - 1; }

  /// Total node count including the aggregator.
  std::size_t node_count() const noexcept { return positions_.size(); }

  /// The aggregator's node id (always a valid index).
  NodeId aggregator() const noexcept { return aggregator_; }

  const Position& position(NodeId id) const;
  double radio_range() const noexcept { return config_.radio_range_m; }
  const FieldConfig& config() const noexcept { return config_; }

  /// Distance between two nodes.
  double link_distance(NodeId a, NodeId b) const;

  /// True when the two nodes are within radio range.
  bool in_range(NodeId a, NodeId b) const;

 private:
  FieldConfig config_;
  std::vector<Position> positions_;
  NodeId aggregator_ = 0;
};

}  // namespace orco::wsn
