// Multi-hop data aggregation tree (paper §III-A).
//
// A shortest-path tree rooted at the data aggregator, built with Dijkstra
// over energy-weighted links limited to radio range. Two aggregation rounds
// are simulated on it:
//
//  * raw round      — every device forwards its reading and all of its
//                     children's readings hop by hop to the root (the
//                     "intra-cluster raw data aggregation" used before
//                     training);
//  * hybrid CS round — per Luo et al. [1]: a node whose subtree has fewer
//                     than M readings forwards raw readings; once a subtree
//                     reaches M readings the node transmits the M-dimensional
//                     compressed partial instead, so per-hop cost is capped
//                     at M values.
//
// Every simulated hop is charged to the TransmissionLedger via the radio
// model (tx at the sender, rx at the receiver).
#pragma once

#include <vector>

#include "wsn/field.h"
#include "wsn/ledger.h"
#include "wsn/radio.h"

namespace orco::wsn {

struct RoundStats {
  std::size_t payload_bytes = 0;
  double energy_j = 0.0;
  double airtime_s = 0.0;
  /// Energy spent per node this round (tx at senders, rx at receivers);
  /// indexed by NodeId. Feeds network-lifetime analysis (wsn/lifetime.h).
  std::vector<double> node_energy_j;
};

class AggregationTree {
 public:
  /// Builds the tree; throws if any device cannot reach the aggregator.
  AggregationTree(const Field& field, const RadioModel& radio);

  NodeId root() const noexcept { return root_; }

  /// Parent of a node (root's parent is itself).
  NodeId parent(NodeId id) const;

  /// Children lists.
  const std::vector<NodeId>& children(NodeId id) const;

  /// Hop count from node to root (root = 0).
  std::size_t depth(NodeId id) const;

  /// Number of devices in the subtree rooted at `id` (excluding the
  /// aggregator root, including `id` itself if it is a device).
  std::size_t subtree_size(NodeId id) const;

  std::size_t max_depth() const;

  /// Nodes in bottom-up order (leaves first, root last).
  const std::vector<NodeId>& bottom_up_order() const noexcept {
    return bottom_up_;
  }

  /// Simulates one raw aggregation round where every device sends
  /// `bytes_per_reading` to the root; returns totals and records to ledger.
  RoundStats simulate_raw_round(std::size_t bytes_per_reading,
                                TransmissionLedger& ledger) const;

  /// Simulates one hybrid compressed-sensing round with latent dimension M
  /// (`m_values`) and `bytes_per_value` per value.
  RoundStats simulate_hybrid_cs_round(std::size_t m_values,
                                      std::size_t bytes_per_value,
                                      TransmissionLedger& ledger) const;

  /// Simulates a one-round broadcast of `bytes` from the root to all
  /// devices (encoder-column distribution, §III-C). Charged as one tx per
  /// tree level plus one rx per device.
  RoundStats simulate_broadcast(std::size_t bytes,
                                TransmissionLedger& ledger) const;

 private:
  void record_hop(NodeId from, NodeId to, std::size_t payload_bytes,
                  LinkKind kind, TransmissionLedger& ledger,
                  RoundStats& stats) const;

  const Field* field_;
  RadioModel radio_;
  NodeId root_;
  std::vector<NodeId> parent_;
  std::vector<std::vector<NodeId>> children_;
  std::vector<std::size_t> depth_;
  std::vector<std::size_t> subtree_size_;
  std::vector<NodeId> bottom_up_;
};

}  // namespace orco::wsn
