#include "wsn/radio.h"

#include <cmath>

#include "common/check.h"

namespace orco::wsn {

double RadioModel::crossover_distance() const {
  ORCO_CHECK(eps_mp_j_bit_m4 > 0.0, "multipath coefficient must be positive");
  return std::sqrt(eps_fs_j_bit_m2 / eps_mp_j_bit_m4);
}

std::size_t RadioModel::packets_for(std::size_t payload_bytes) const {
  ORCO_CHECK(mtu_payload_bytes > 0, "MTU must be positive");
  if (payload_bytes == 0) return 0;
  return (payload_bytes + mtu_payload_bytes - 1) / mtu_payload_bytes;
}

std::size_t RadioModel::wire_bytes(std::size_t payload_bytes) const {
  return payload_bytes + packets_for(payload_bytes) * header_bytes;
}

double RadioModel::tx_energy(std::size_t payload_bytes,
                             double distance_m) const {
  ORCO_CHECK(distance_m >= 0.0, "negative distance");
  const double bits = static_cast<double>(wire_bytes(payload_bytes)) * 8.0;
  const double d0 = crossover_distance();
  double amp = 0.0;
  if (distance_m < d0) {
    amp = eps_fs_j_bit_m2 * distance_m * distance_m;
  } else {
    amp = eps_mp_j_bit_m4 * distance_m * distance_m * distance_m * distance_m;
  }
  return bits * (e_elec_j_per_bit + amp);
}

double RadioModel::rx_energy(std::size_t payload_bytes) const {
  const double bits = static_cast<double>(wire_bytes(payload_bytes)) * 8.0;
  return bits * e_elec_j_per_bit;
}

double RadioModel::airtime(std::size_t payload_bytes) const {
  ORCO_CHECK(bit_rate_bps > 0.0, "bit rate must be positive");
  const double bits = static_cast<double>(wire_bytes(payload_bytes)) * 8.0;
  return bits / bit_rate_bps;
}

}  // namespace orco::wsn
