// Transmission ledger: the single source of truth for every byte, joule and
// simulated second spent moving data. Figure 3's transmission-cost series
// and the communication component of Figure 4's time axis are read straight
// from here.
#pragma once

#include <array>
#include <cstddef>
#include <string>

namespace orco::wsn {

enum class LinkKind {
  kIntraCluster = 0,   // device <-> device / device -> aggregator hops
  kUplink = 1,         // aggregator -> edge server
  kDownlink = 2,       // edge server -> aggregator
  kBroadcast = 3,      // aggregator -> devices (encoder distribution)
};
inline constexpr std::size_t kLinkKindCount = 4;

const char* link_kind_name(LinkKind kind);

struct LinkTotals {
  std::size_t payload_bytes = 0;
  std::size_t wire_bytes = 0;  // payload + packet headers
  std::size_t packets = 0;
  std::size_t messages = 0;
  double energy_j = 0.0;
  double airtime_s = 0.0;
};

class TransmissionLedger {
 public:
  /// Records one message on a link.
  void record(LinkKind kind, std::size_t payload_bytes,
              std::size_t wire_bytes, std::size_t packets, double energy_j,
              double airtime_s);

  const LinkTotals& totals(LinkKind kind) const;

  /// Sums across all link kinds.
  LinkTotals grand_total() const;

  /// Total simulated communication time (s). Intra-cluster hops on the
  /// shared medium serialise, so airtimes add.
  double total_airtime() const;

  void reset();

  /// One-line human-readable summary.
  std::string summary() const;

 private:
  std::array<LinkTotals, kLinkKindCount> totals_{};
};

}  // namespace orco::wsn
