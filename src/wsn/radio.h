// First-order radio energy model and 802.15.4-style link parameters.
//
// The standard WSN energy model (Heinzelman et al.): transmitting k bits
// over distance d costs E_elec*k + eps_fs*k*d^2 (free space) below the
// crossover distance d0, and E_elec*k + eps_mp*k*d^4 beyond it; receiving
// costs E_elec*k. Airtime follows from the bit rate plus per-packet
// header/MTU fragmentation.
#pragma once

#include <cstddef>

namespace orco::wsn {

struct RadioModel {
  double e_elec_j_per_bit = 50e-9;    // electronics energy
  double eps_fs_j_bit_m2 = 10e-12;    // free-space amplifier
  double eps_mp_j_bit_m4 = 0.0013e-12;  // multipath amplifier
  double bit_rate_bps = 250e3;        // 802.15.4
  std::size_t header_bytes = 25;      // PHY+MAC overhead per packet
  std::size_t mtu_payload_bytes = 102;  // payload per packet

  /// Free-space/multipath crossover distance (m).
  double crossover_distance() const;

  /// Number of packets needed for `payload_bytes` of application data.
  std::size_t packets_for(std::size_t payload_bytes) const;

  /// Total on-air bytes including per-packet headers.
  std::size_t wire_bytes(std::size_t payload_bytes) const;

  /// Energy (J) to transmit `payload_bytes` over distance d, with headers.
  double tx_energy(std::size_t payload_bytes, double distance_m) const;

  /// Energy (J) to receive `payload_bytes`, with headers.
  double rx_energy(std::size_t payload_bytes) const;

  /// Airtime (s) for `payload_bytes`, with headers.
  double airtime(std::size_t payload_bytes) const;
};

}  // namespace orco::wsn
